// Module composition.
//
// The paper's constructions stack protocols: NBAC runs on top of QC plus
// FS (Fig. 4), QC on top of NBAC (Fig. 5), QC on top of consensus
// (Fig. 2), the Sigma extraction on top of n register instances (Fig. 1),
// FS is built from infinitely many NBAC instances, and register-based
// consensus uses n register instances. A ModuleHost hosts named modules
// inside one process; messages are routed by module name, and modules
// interact locally through direct method calls and completion callbacks,
// all within the host's atomic steps.
//
// Two hosts exist (the sim-vs-runtime contract, DESIGN.md §11):
// sim::ModularProcess runs the modules as a process automaton inside the
// discrete-event simulator (and the explorer / model checker), and
// runtime::RuntimeProcess (src/runtime/host.h, where `runtime::Host`
// aliases ModuleHost) runs the *same* module objects as a thread over
// real channels with a monotonic clock. Module code must therefore only
// ever talk to the world through the ModuleHost surface below.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "fd/values.h"
#include "sim/payload.h"
#include "sim/process.h"
#include "sim/state_encoder.h"

namespace wfd::sim {

class Module;
class ModularProcess;
struct ModuleEnvelope;

/// A local source of failure-detector values. Algorithm modules read
/// their detector through this indirection so the same algorithm can run
/// against an oracle history (the default: the value sampled by the host
/// in the current step) or against a detector *implementation* — another
/// module, e.g. the join-quorum Sigma — without any code change. This is
/// exactly the paper's notion of transforming one detector into another:
/// a transformation module implements FdSource.
class FdSource {
 public:
  virtual ~FdSource() = default;
  [[nodiscard]] virtual fd::FdValue fd_value() const = 0;
};

/// Interposes on a module's outgoing inter-process traffic. A transport
/// module (e.g. broadcast::QuasiReliableModule) implements this so that
/// algorithm modules written against reliable links can run unchanged
/// over lossy ones — the transport wraps each payload with whatever
/// sequencing/retransmission state it needs and delivers it to the
/// destination's same-named module on the far side.
class ModuleTransport {
 public:
  virtual ~ModuleTransport() = default;

  /// Ship `payload` to the module named `module` on process `to`.
  virtual void module_send(const std::string& module, ProcessId to,
                           PayloadPtr payload) = 0;
};

/// Everything a Module needs from whatever is hosting it — the seam that
/// lets one module codebase run under both the simulator/explorer and
/// the concurrent runtime (aliased as runtime::Host there).
///
/// The surface splits in two:
///
///  * the *module container* (add_module / find_module / module) is
///    concrete and shared: dynamic instance creation ("nbac/7",
///    consensus round k) and pre-existence message buffering behave
///    identically under every host;
///
///  * the *environment* (identity, time, detector sample, sends, event
///    emission, randomness) is virtual: the simulator answers from the
///    current step's Context, the runtime from real clocks, channels and
///    its configured implementable detector.
///
/// Delivery and tick *scheduling* deliberately stay outside this
/// interface: the host decides when on_message/on_tick run (the
/// simulator per atomic step, the runtime per inbox batch and timer-
/// wheel deadline); modules only ever observe the calls.
class ModuleHost {
 public:
  virtual ~ModuleHost();

  /// Add a module under a unique name. If the host is mid-run the module
  /// is started immediately and receives any messages that arrived for
  /// its name before it existed (instances created on demand, e.g.
  /// "nbac/7", rely on this).
  template <typename M, typename... Args>
  M& add_module(std::string module_name, Args&&... args) {
    WFD_CHECK_MSG(by_name_.find(module_name) == by_name_.end(),
                  "duplicate module name");
    auto mod = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *mod;
    attach_module(std::move(mod), std::move(module_name));
    return ref;
  }

  /// Find a module by name; nullptr when absent.
  [[nodiscard]] Module* find_module(const std::string& module_name) const;

  /// Find and downcast; asserts on absence or type mismatch.
  template <typename M>
  [[nodiscard]] M& module(const std::string& module_name) const;

  // --- Environment surface (what Module's protected helpers consume).

  [[nodiscard]] virtual ProcessId self() const = 0;
  [[nodiscard]] virtual int n() const = 0;

  /// The host's notion of time, in host time units: the simulator's
  /// global step index, the runtime's milliseconds since cluster start.
  /// Monotone non-decreasing; modules must treat the unit as opaque and
  /// take any absolute scale (timeouts, periods) from their Options.
  [[nodiscard]] virtual Time now() const = 0;

  /// The failure-detector value a module without an FdSource acts on.
  /// The reference is valid for the duration of the current
  /// on_start/on_message/on_tick call.
  [[nodiscard]] virtual const fd::FdValue& fd_sample() const = 0;

  /// Ship `payload` to the same-named module of process `to` (the host
  /// wraps it in a ModuleEnvelope on the wire).
  virtual void module_out(const std::string& module, ProcessId to,
                          PayloadPtr payload) = 0;

  /// Ship `payload` to the same-named module of every process
  /// (optionally including self; self-delivery goes through the host's
  /// delivery machinery like any other message, never inline).
  virtual void module_broadcast(const std::string& module, PayloadPtr payload,
                                bool include_self) = 0;

  /// Record a protocol-level event (e.g. a decision): the simulator's
  /// Trace, the runtime's per-process event log.
  virtual void emit_event(const std::string& kind, std::int64_t value) = 0;

  /// Per-process deterministic randomness for protocol-internal choices.
  [[nodiscard]] virtual Rng& host_rng() = 0;

 protected:
  // --- Shared container machinery for concrete hosts.

  /// Start every module added so far (modules added *while* starting are
  /// started inline by add_module), then tick all — the host's first
  /// step. Idempotent per host lifetime.
  void start_modules();

  /// Route one unwrapped envelope to its module (buffering it when the
  /// module does not exist yet).
  void dispatch_module_msg(ProcessId from, const ModuleEnvelope& env);

  /// Tick every module, by index: modules added during the sweep are
  /// ticked too, which is harmless (their on_tick sees a consistent
  /// started state).
  void tick_modules();

  [[nodiscard]] bool modules_started() const { return started_; }
  [[nodiscard]] bool modules_done() const;
  [[nodiscard]] bool modules_tick_noop() const;

  /// Composes the per-module encodings (each in a scope keyed by the
  /// module's name) plus the pre-existence message buffer.
  void encode_modules(StateEncoder& enc) const;

 private:
  struct BufferedMsg {
    ProcessId from;
    PayloadPtr inner;
  };

  void attach_module(std::unique_ptr<Module> mod, std::string module_name);
  void start_module(Module& m);

  std::vector<std::unique_ptr<Module>> modules_;
  std::map<std::string, Module*> by_name_;
  std::map<std::string, std::vector<BufferedMsg>> undelivered_;
  bool started_ = false;
};

/// A protocol component living inside a ModuleHost. The protected
/// helpers (send, fd, ...) are valid only while the host is delivering a
/// message or ticking, which is the only time module code runs.
class Module {
 public:
  virtual ~Module() = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Called once, during the host's first step (or immediately when the
  /// module is added mid-run).
  virtual void on_start() {}

  /// A message from the same-named module of process `from`.
  virtual void on_message(ProcessId from, const Payload& msg) = 0;

  /// Called on every step of the host (use for timeouts/retries).
  virtual void on_tick() {}

  /// True when on_tick is currently a pure no-op *and stays one across
  /// the deliveries the explorer may commute it with*: the returned
  /// value must depend only on state that no tick_insensitive message
  /// handler writes, and while it is true, on_tick must neither act nor
  /// read anything such a handler writes. The explorer uses this (via
  /// Process::tick_noop) to commute inert lambda steps with
  /// tick-insensitive deliveries; modules with a live tick keep the
  /// conservative default.
  [[nodiscard]] virtual bool tick_noop() const { return false; }

  /// False while this module still has work that should keep the run
  /// alive. Service modules (servers, detector implementations) keep the
  /// default `true` so they never block run completion.
  [[nodiscard]] virtual bool done() const { return true; }

  /// Route this module's detector reads through `src` instead of the
  /// host's sample (pass nullptr to restore the host's detector).
  void set_fd_source(const FdSource* src) { fd_source_ = src; }

  /// Route this module's send/broadcast through `t` instead of the raw
  /// network (pass nullptr to restore direct sends). The transport must
  /// live on the same host and must not itself have a transport set.
  void set_transport(ModuleTransport* t) { transport_ = t; }

  /// Fold every member that influences this module's future behaviour
  /// into `enc` (see StateEncoder for the conventions). The host wraps
  /// the call in a per-module scope, so tags only need to be unique
  /// within the module. Modules that keep the default are opaque and
  /// disable fingerprint pruning for any scenario containing them.
  virtual void encode_state(StateEncoder& enc) const {
    enc.opaque("module");
  }

 protected:
  /// The failure-detector value this module should act on in this step:
  /// the configured FdSource if any, else the host's sample.
  [[nodiscard]] fd::FdValue detector() const;

  [[nodiscard]] ProcessId self() const;
  [[nodiscard]] int n() const;
  [[nodiscard]] Time now() const;
  [[nodiscard]] const fd::FdValue& fd() const;
  void send(ProcessId to, PayloadPtr payload);
  void broadcast(PayloadPtr payload, bool include_self = true);
  void emit(const std::string& kind, std::int64_t value);
  Rng& rng();
  [[nodiscard]] ModuleHost& host() const;

 private:
  friend class ModuleHost;
  ModuleHost* host_ = nullptr;
  std::string name_;
  const FdSource* fd_source_ = nullptr;
  ModuleTransport* transport_ = nullptr;
};

template <typename M>
M& ModuleHost::module(const std::string& module_name) const {
  Module* m = find_module(module_name);
  WFD_CHECK_MSG(m != nullptr, "module not found");
  auto* typed = dynamic_cast<M*>(m);
  WFD_CHECK_MSG(typed != nullptr, "module type mismatch");
  return *typed;
}

/// Wire format: every inter-process message of a module is wrapped with
/// the module's name so the receiving host can route it.
///
/// The identity/commutativity contract forwards to the inner payload,
/// with one refinement: two envelopes commute only when they address the
/// *same* module. Deliveries to different modules of one host never
/// commute — each module's handler runs relative to its own tick
/// sequence, so a cross-module swap can shift a tick-gated threshold
/// (e.g. an NBAC vote completing while the inner consensus is mid-round)
/// by a step, and the per-module contracts cannot see that interaction.
struct ModuleEnvelope final : Payload {
  ModuleEnvelope(std::string module_name, PayloadPtr inner_payload)
      : module(std::move(module_name)), inner(std::move(inner_payload)) {}
  std::string module;
  PayloadPtr inner;

  void encode_state(StateEncoder& enc) const override {
    enc.field("module", module);
    enc.push("inner");
    inner->encode_state(enc);
    enc.pop();
  }

  /// Classified exactly when the inner payload is: the envelope itself
  /// adds routing, not semantics, so the audit obligation stays with the
  /// protocol payload.
  [[nodiscard]] std::string_view kind() const override {
    return inner->kind();
  }

  [[nodiscard]] bool commutes_with(const Payload& other) const override {
    const auto* o = payload_cast<ModuleEnvelope>(other);
    return o != nullptr && module == o->module &&
           inner->commutes_with(*o->inner);
  }

  /// Tick insensitivity is a property of the addressed handler alone, so
  /// it forwards unconditionally (the host's per-module routing adds no
  /// time reads).
  [[nodiscard]] bool tick_insensitive() const override {
    return inner->tick_insensitive();
  }

  [[nodiscard]] std::string identity() const override {
    return module + ":" + inner->identity();
  }
};

/// Merges two FdSources into a tuple detector (e.g. heartbeat Omega +
/// join-quorum Sigma => an implemented (Omega, Sigma) with no oracle).
/// Components of `a` win where both are present.
class MergedFdSource : public FdSource {
 public:
  MergedFdSource(const FdSource* a, const FdSource* b) : a_(a), b_(b) {
    WFD_CHECK(a != nullptr && b != nullptr);
  }

  [[nodiscard]] fd::FdValue fd_value() const override {
    fd::FdValue v = a_->fd_value();
    const fd::FdValue w = b_->fd_value();
    if (!v.omega && w.omega) v.omega = w.omega;
    if (!v.sigma && w.sigma) v.sigma = w.sigma;
    if (!v.fs && w.fs) v.fs = w.fs;
    if (!v.psi && w.psi) v.psi = w.psi;
    if (!v.suspected && w.suspected) v.suspected = w.suspected;
    return v;
  }

 private:
  const FdSource* a_;
  const FdSource* b_;
};

/// The simulator's host: a process automaton whose atomic steps deliver
/// at most one module message and then tick every module, with the
/// environment answered from the current step's Context.
class ModularProcess : public Process, public ModuleHost {
 public:
  void on_start(Context& ctx) override;
  void on_step(Context& ctx, const Envelope* msg) override;
  [[nodiscard]] bool done() const override;

  /// A host's step ticks every module, so the host's lambda step is
  /// inert exactly when every hosted module's tick is a declared no-op.
  [[nodiscard]] bool tick_noop() const override;

  /// The current step's context; valid only while the host is stepping.
  [[nodiscard]] Context& ctx() const {
    WFD_CHECK_MSG(current_ != nullptr, "module code ran outside a step");
    return *current_;
  }

  void set_instrument(TransportInstrument* ins) { instrument_ = ins; }
  [[nodiscard]] TransportInstrument* instrument() override {
    return instrument_;
  }

  /// Composes the per-module encodings (each in a scope keyed by the
  /// module's name) plus the pre-existence message buffer. Opaque iff
  /// any hosted module is.
  void encode_state(StateEncoder& enc) const override;

  // --- ModuleHost environment surface, answered from the step Context.
  [[nodiscard]] ProcessId self() const override;
  [[nodiscard]] int n() const override;
  [[nodiscard]] Time now() const override;
  [[nodiscard]] const fd::FdValue& fd_sample() const override;
  void module_out(const std::string& module, ProcessId to,
                  PayloadPtr payload) override;
  void module_broadcast(const std::string& module, PayloadPtr payload,
                        bool include_self) override;
  void emit_event(const std::string& kind, std::int64_t value) override;
  [[nodiscard]] Rng& host_rng() override;

 private:
  Context* current_ = nullptr;
  TransportInstrument* instrument_ = nullptr;
};

}  // namespace wfd::sim
