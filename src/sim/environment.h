// Environments: sets of failure patterns (the paper's E). An environment
// both recognises patterns (allows) and generates random members (sample),
// so property sweeps can draw patterns from exactly the environment an
// algorithm was proven for.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "sim/failure_pattern.h"

namespace wfd::sim {

class Environment {
 public:
  explicit Environment(int n) : n_(n) {}
  virtual ~Environment() = default;

  [[nodiscard]] int n() const { return n_; }

  /// Whether the pattern belongs to this environment.
  [[nodiscard]] virtual bool allows(const FailurePattern& f) const = 0;

  /// Draw a random pattern from the environment. Crash times are drawn in
  /// [0, horizon), so all crashes happen within the simulated run.
  [[nodiscard]] virtual FailurePattern sample(Rng& rng, Time horizon) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 private:
  int n_;
};

/// All patterns with at most max_crashes faulty processes. With
/// max_crashes = n-1 this is the "any environment" of the paper (at least
/// one correct process is always required for liveness properties to be
/// meaningful).
class MaxCrashesEnvironment : public Environment {
 public:
  MaxCrashesEnvironment(int n, int max_crashes);

  [[nodiscard]] bool allows(const FailurePattern& f) const override;
  [[nodiscard]] FailurePattern sample(Rng& rng, Time horizon) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int max_crashes() const { return max_crashes_; }

 private:
  int max_crashes_;
};

/// The wildest environment: any pattern leaving at least one correct
/// process.
class AnyEnvironment : public MaxCrashesEnvironment {
 public:
  explicit AnyEnvironment(int n) : MaxCrashesEnvironment(n, n - 1) {}
  [[nodiscard]] std::string name() const override { return "any"; }
};

/// Patterns in which a strict majority of processes is correct. This is
/// the environment in which Sigma is implementable "ex nihilo" and in
/// which Omega alone suffices for consensus.
class MajorityCorrectEnvironment : public MaxCrashesEnvironment {
 public:
  explicit MajorityCorrectEnvironment(int n)
      : MaxCrashesEnvironment(n, (n - 1) / 2) {}
  [[nodiscard]] std::string name() const override { return "majority-correct"; }
};

/// The failure-free environment.
class CrashFreeEnvironment : public MaxCrashesEnvironment {
 public:
  explicit CrashFreeEnvironment(int n) : MaxCrashesEnvironment(n, 0) {}
  [[nodiscard]] std::string name() const override { return "crash-free"; }
};

/// The "initial crashes only" environment the paper's introduction
/// mentions ("no process crashes after it has taken at least one
/// step"): every faulty process is dead from time 0. Algorithms never
/// observe a transition from alive to crashed in these runs.
class InitialCrashesEnvironment : public Environment {
 public:
  InitialCrashesEnvironment(int n, int max_crashes);

  [[nodiscard]] bool allows(const FailurePattern& f) const override;
  [[nodiscard]] FailurePattern sample(Rng& rng, Time horizon) const override;
  [[nodiscard]] std::string name() const override {
    return "initial-crashes";
  }

 private:
  int max_crashes_;
};

/// The ordered-crash environment of the introduction ("process p never
/// fails before process q"): patterns where `first` crashing implies
/// `second` crashed no later.
class OrderedCrashEnvironment : public Environment {
 public:
  /// Patterns where `first` never fails before `second`.
  OrderedCrashEnvironment(int n, ProcessId first, ProcessId second,
                          int max_crashes);

  [[nodiscard]] bool allows(const FailurePattern& f) const override;
  [[nodiscard]] FailurePattern sample(Rng& rng, Time horizon) const override;
  [[nodiscard]] std::string name() const override { return "ordered-crash"; }

 private:
  ProcessId first_;
  ProcessId second_;
  int max_crashes_;
};

/// A single fixed pattern (useful for adversarial tests).
class FixedPatternEnvironment : public Environment {
 public:
  explicit FixedPatternEnvironment(FailurePattern f);

  [[nodiscard]] bool allows(const FailurePattern& f) const override;
  [[nodiscard]] FailurePattern sample(Rng& rng, Time horizon) const override;
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  FailurePattern pattern_;
};

}  // namespace wfd::sim
