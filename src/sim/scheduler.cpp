#include "sim/scheduler.h"

#include <algorithm>

#include "common/check.h"
#include "inject/fault_plan.h"

namespace wfd::sim {

// ---------------------------------------------------------------- RoundRobin

void RoundRobinScheduler::begin_run(int n, const FailurePattern& f,
                                    std::uint64_t seed) {
  (void)f;
  (void)seed;
  n_ = n;
  cursor_ = 0;
}

StepChoice RoundRobinScheduler::next(const Network& net,
                                     const FailurePattern& f, Time now) {
  for (int tried = 0; tried < n_; ++tried) {
    const ProcessId p = cursor_;
    cursor_ = (cursor_ + 1) % n_;
    if (!f.alive(p, now)) continue;
    StepChoice c;
    c.p = p;
    c.message_id = net.oldest_for(p);
    return c;
  }
  return StepChoice{};  // Everyone crashed.
}

// ---------------------------------------------------------------- RandomFair

void RandomFairScheduler::begin_run(int n, const FailurePattern& f,
                                    std::uint64_t seed) {
  (void)f;
  n_ = n;
  rng_.reseed(seed);
  round_.clear();
}

void RandomFairScheduler::refill_round(const FailurePattern& f, Time now) {
  round_.clear();
  for (ProcessId p = 0; p < n_; ++p) {
    if (f.alive(p, now)) round_.push_back(p);
  }
  // Fisher-Yates shuffle.
  for (std::size_t i = round_.size(); i > 1; --i) {
    const std::size_t j = rng_.below(i);
    std::swap(round_[i - 1], round_[j]);
  }
}

StepChoice RandomFairScheduler::next(const Network& net,
                                     const FailurePattern& f, Time now) {
  // Drop processes that crashed since the round was formed.
  while (!round_.empty() && !f.alive(round_.back(), now)) round_.pop_back();
  if (round_.empty()) {
    refill_round(f, now);
    if (round_.empty()) return StepChoice{};  // Everyone crashed.
  }
  StepChoice c;
  c.p = round_.back();
  round_.pop_back();

  const auto pending = net.pending_for(c.p);
  if (pending.empty()) return c;  // Lambda step.

  // Force-deliver overdue messages to keep delays finite.
  const Envelope& oldest = net.get(pending.front());
  if (now - oldest.sent_at >= opt_.force_age) {
    c.message_id = pending.front();
    return c;
  }
  if (rng_.uniform01() < opt_.lambda_prob) return c;  // Lambda step.
  if (rng_.uniform01() < opt_.oldest_prob) {
    c.message_id = pending.front();
  } else {
    c.message_id = pending[rng_.below(pending.size())];
  }
  return c;
}

// ---------------------------------------------------------- PartialSynchrony

PartialSynchronyScheduler::PartialSynchronyScheduler(
    Time gst, RandomFairScheduler::Options pre_opts)
    : gst_(gst), pre_(pre_opts) {}

void PartialSynchronyScheduler::begin_run(int n, const FailurePattern& f,
                                          std::uint64_t seed) {
  pre_.begin_run(n, f, seed);
  post_.begin_run(n, f, seed);
}

StepChoice PartialSynchronyScheduler::next(const Network& net,
                                           const FailurePattern& f, Time now) {
  if (now < gst_) return pre_.next(net, f, now);
  return post_.next(net, f, now);
}

// ------------------------------------------------------------------ Filtered

FilteredScheduler::FilteredScheduler(std::unique_ptr<Scheduler> base,
                                     Filter blocked)
    : base_(std::move(base)), blocked_(std::move(blocked)) {
  WFD_CHECK(base_ != nullptr);
  WFD_CHECK(blocked_ != nullptr);
}

void FilteredScheduler::begin_run(int n, const FailurePattern& f,
                                  std::uint64_t seed) {
  base_->begin_run(n, f, seed);
}

StepChoice FilteredScheduler::next(const Network& net, const FailurePattern& f,
                                   Time now) {
  StepChoice c = base_->next(net, f, now);
  if (c.p == kNoProcess || c.message_id == 0) return c;
  if (blocked_(net.get(c.message_id), now)) {
    // Withhold: try to substitute the oldest unblocked message; otherwise
    // the process takes a lambda step and the message stays pending.
    for (std::uint64_t id : net.pending_for(c.p)) {
      if (!blocked_(net.get(id), now)) {
        c.message_id = id;
        return c;
      }
    }
    c.message_id = 0;
  }
  return c;
}

// -------------------------------------------------------------------- Replay

ReplayScheduler::ReplayScheduler(ChoiceSource* choices, Options opt)
    : choices_(choices), opt_(opt) {
  WFD_CHECK(choices_ != nullptr);
}

void ReplayScheduler::begin_run(int n, const FailurePattern& f,
                                std::uint64_t seed) {
  (void)f;
  (void)seed;
  n_ = n;
  started_.assign(static_cast<std::size_t>(n), false);
}

StepChoice ReplayScheduler::next(const Network& net, const FailurePattern& f,
                                 Time now) {
  std::vector<StepChoice> options;
  std::vector<std::uint64_t> labels;
  for (ProcessId p = 0; p < n_; ++p) {
    if (!f.alive(p, now)) continue;
    if (!started_[static_cast<std::size_t>(p)]) {
      // The first step of a process receives no message; offering
      // deliveries would silently waste them (the simulator runs
      // on_start and leaves the message pending).
      options.push_back(StepChoice{p, 0});
      labels.push_back(label(p, 0));
      continue;
    }
    bool any_delivery = false;
    std::uint64_t seen_channels = 0;  // Senders already offered (bitmask).
    for (std::uint64_t id : net.pending_for(p)) {
      const ProcessId from = net.get(id).from;
      if (opt_.oldest_per_channel) {
        const std::uint64_t bit = std::uint64_t{1} << from;
        if ((seen_channels & bit) != 0) continue;
        seen_channels |= bit;
      }
      options.push_back(StepChoice{p, id});
      labels.push_back(label(p, id));
      any_delivery = true;
    }
    if (opt_.lambda_always || !any_delivery) {
      options.push_back(StepChoice{p, 0});
      labels.push_back(label(p, 0));
    }
  }
  if (opt_.faults != nullptr) {
    // Adversary moves go after the normal labels so default (index-0)
    // exploration prefers progress. Drop/duplicate apply to exactly the
    // deliveries already on the menu — dropping a message the reduction
    // would not offer for delivery is covered by dropping the offered
    // (older) one first.
    const std::size_t normal = options.size();
    for (std::size_t i = 0; i < normal; ++i) {
      // By value: the push_backs below may reallocate `options`.
      const StepChoice c = options[i];
      if (c.message_id == 0) continue;
      const ProcessId from = net.get(c.message_id).from;
      if (opt_.faults->may_drop(from, c.p)) {
        options.push_back(
            StepChoice{c.p, c.message_id, StepChoice::Action::kDrop});
        labels.push_back(
            label(c.p, c.message_id, StepChoice::Action::kDrop));
      }
      if (opt_.faults->may_dup(from, c.p)) {
        options.push_back(
            StepChoice{c.p, c.message_id, StepChoice::Action::kDup});
        labels.push_back(
            label(c.p, c.message_id, StepChoice::Action::kDup));
      }
    }
    for (ProcessId p = 0; p < n_; ++p) {
      if (opt_.faults->may_crash(p, f, now)) {
        options.push_back(StepChoice{p, 0, StepChoice::Action::kCrash});
        labels.push_back(label(p, 0, StepChoice::Action::kCrash));
      }
    }
  }
  if (options.empty()) return StepChoice{};  // Everyone crashed.
  // Report the full menu — forced moves included — before the >=2 guard:
  // liveness fairness bookkeeping needs the enabled set of every step,
  // and single-option points never reach choose().
  choices_->note_enabled(ChoiceKind::kSchedule, labels);
  std::size_t idx = 0;
  if (options.size() >= 2) {
    idx = choices_->choose(ChoiceKind::kSchedule, labels);
    WFD_CHECK(idx < options.size());
  }
  if (options[idx].action == StepChoice::Action::kDeliver) {
    started_[static_cast<std::size_t>(options[idx].p)] = true;
  }
  return options[idx];
}

}  // namespace wfd::sim
