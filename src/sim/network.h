// The message buffer: the set of messages that have been sent but not yet
// received. Links are reliable (messages to correct processes are
// eventually delivered — enforced by the schedulers) with finite but
// unbounded, variable delay.
//
// Messages are indexed by recipient so scheduler queries cost O(pending
// for that process), not O(all pending) — long runs accumulate
// undeliverable messages addressed to crashed processes, which must not
// slow down the rest of the system.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/envelope.h"

namespace wfd::sim {

class Network {
 public:
  /// Enqueue a message; assigns its unique id. Returns the id.
  std::uint64_t send(Envelope env);

  /// Ids of pending messages addressed to p, oldest first.
  [[nodiscard]] std::vector<std::uint64_t> pending_for(ProcessId p) const;

  /// Whether any message is pending for p.
  [[nodiscard]] bool has_pending(ProcessId p) const;

  /// Oldest pending message id for p, or 0 when none.
  [[nodiscard]] std::uint64_t oldest_for(ProcessId p) const;

  /// Access a pending message by id; asserts that it exists.
  [[nodiscard]] const Envelope& get(std::uint64_t id) const;

  /// Whether a pending message with this id exists.
  [[nodiscard]] bool contains(std::uint64_t id) const;

  /// Remove a delivered message.
  Envelope take(std::uint64_t id);

  /// Total pending messages.
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }

  /// Total messages ever sent through this network.
  [[nodiscard]] std::uint64_t total_sent() const { return next_id_ - 1; }

  /// Visit every pending message (unspecified order) — the in-flight
  /// multiset a state fingerprint folds.
  template <typename F>
  void for_each_pending(F&& f) const {
    for (const auto& [id, env] : by_id_) f(env);
  }

 private:
  /// Drop delivered ids from the front of p's queue.
  void prune_front(ProcessId p) const;

  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Envelope> by_id_;
  /// Per-recipient id queues in send order; may contain ids already
  /// delivered (lazily pruned).
  mutable std::map<ProcessId, std::deque<std::uint64_t>> by_recipient_;
};

}  // namespace wfd::sim
