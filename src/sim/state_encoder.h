// Canonical state encoding for fingerprint-based pruning.
//
// A StateEncoder folds tagged fields into one 64-bit digest. The combine
// is *order-insensitive* (a wrapping sum of per-field hashes): callers may
// enumerate fields, modules, processes or in-flight messages in any order
// — including unordered-map order — and states that differ only in
// enumeration order hash identically. Collisions between *different*
// fields are avoided by mixing each value with an FNV-1a hash of its tag
// and of the current scope path (push/pop), so `round=1, phase=2` and
// `round=2, phase=1` do not collide.
//
// Components that cannot describe their state faithfully call opaque();
// this poisons the digest (complete() turns false) and the explorer then
// disables fingerprint pruning instead of pruning unsoundly.
//
// Convention for writing encode_state: fold every member that influences
// *future* behaviour (phases, rounds, counters, stored values, quorum
// masks), skip what is derivable or write-only (trace emission already
// happened), and fold times only as *relative* quantities — absolute
// timestamps make every depth unique and defeat the pruning.
//
// Symmetry canonicalization: an encoder may carry a process renaming
// (a permutation of 0..n-1). Every process identity folded through the
// pid-aware entry points — pid_field(), push_proc(), and the ProcessSet
// overload of field() — is mapped through the renaming first, so the
// digest of a state under permutation pi equals the plain digest of the
// pi-renamed state, provided every encode_state routes pids through
// those entry points. The explorer takes the minimum digest over the
// scenario's symmetry group (ScenarioFactory::symmetry_classes) as the
// canonical fingerprint. Sub-encoders must be created with child() so
// the renaming propagates; a pid site folded through the plain scalar
// field() is simply not collapsed (the reduction degrades to fewer
// merges, never to unsound ones — only hash collisions can conflate
// genuinely different states, as with any fingerprint).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/process_set.h"
#include "common/types.h"

namespace wfd::sim {

class StateEncoder {
 public:
  StateEncoder() = default;
  /// An encoder that renames process ids through `perm` (size n, a
  /// permutation of 0..n-1; ids outside the range — kNoProcess — pass
  /// through). The caller keeps `perm` alive for the encoder's lifetime.
  explicit StateEncoder(const std::vector<ProcessId>* perm) : perm_(perm) {}

  /// A fresh sub-encoder inheriting the renaming (for the multiset
  /// idiom with merge()). Always build sub-encoders this way.
  [[nodiscard]] StateEncoder child() const { return StateEncoder(perm_); }

  /// The renamed identity of `p` (identity map without a renaming).
  [[nodiscard]] ProcessId map_pid(ProcessId p) const {
    if (perm_ == nullptr || p < 0 ||
        static_cast<std::size_t>(p) >= perm_->size()) {
      return p;
    }
    return (*perm_)[static_cast<std::size_t>(p)];
  }

  /// Enter a nested scope; every field folded until the matching pop()
  /// is keyed by this scope (e.g. push("proc", p) around a process).
  void push(std::string_view tag) { ctx_.push_back(mix(top() ^ fnv(tag))); }
  void push(std::string_view tag, std::uint64_t index) {
    ctx_.push_back(mix(top() ^ fnv(tag) ^ mix(index)));
  }
  /// Scope keyed by a *process identity*: the index is renamed.
  void push_proc(std::string_view tag, ProcessId p) {
    push(tag, static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(map_pid(p))));
  }
  void pop() { ctx_.pop_back(); }

  /// Fold a field whose value *is* a process identity (renamed; -1 /
  /// kNoProcess encodes consistently either way).
  void pid_field(std::string_view tag, ProcessId p) {
    field(tag, static_cast<std::int64_t>(map_pid(p)));
  }

  /// Fold one tagged scalar. Accepts any integral or enum type (values
  /// are sign-extended through int64 so -1 encodes consistently), bools,
  /// and string-ish values.
  template <typename T>
  void field(std::string_view tag, T value) {
    if constexpr (std::is_same_v<T, bool>) {
      fold(tag, value ? 1u : 0u);
    } else if constexpr (std::is_enum_v<T>) {
      fold(tag, static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(value)));
    } else if constexpr (std::is_integral_v<T>) {
      fold(tag, static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(value)));
    } else if constexpr (std::is_convertible_v<T, std::string_view>) {
      fold(tag, fnv(std::string_view(value)));
    } else {
      static_assert(sizeof(T) == 0, "unsupported field type");
    }
  }
  void field(std::string_view tag, const ProcessSet& value) {
    if (perm_ == nullptr) {
      fold(tag, value.raw());
      return;
    }
    ProcessSet mapped;
    for (ProcessId p : value.members()) mapped.insert(map_pid(p));
    fold(tag, mapped.raw());
  }
  /// Optional fields fold presence plus (when present) the value, so
  /// nullopt and a present zero stay distinct.
  template <typename T>
  void field(std::string_view tag, const std::optional<T>& value) {
    fold(tag, value.has_value() ? 1u : 0u);
    if (value.has_value()) {
      push(tag);
      field("val", *value);
      pop();
    }
  }

  /// Fold a fully built sub-encoding as one field — the multiset idiom:
  /// encode each element into its own StateEncoder and merge, and the
  /// collection hashes the same under any enumeration order.
  void merge(std::string_view tag, const StateEncoder& sub) {
    fold(tag, sub.digest());
    complete_ = complete_ && sub.complete();
  }

  /// Declare that part of the state could not be encoded. The digest is
  /// then unusable for pruning (complete() == false).
  void opaque(std::string_view what) {
    fold("opaque", fnv(what));
    complete_ = false;
  }

  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] std::uint64_t digest() const {
    return mix(acc_ ^ mix(count_));
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
  static std::uint64_t fnv(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return h;
  }
  [[nodiscard]] std::uint64_t top() const {
    return ctx_.empty() ? 0x51ed270b35ae2d01ull : ctx_.back();
  }
  void fold(std::string_view tag, std::uint64_t value) {
    acc_ += mix(top() ^ fnv(tag) ^ mix(value));
    ++count_;
  }

  std::uint64_t acc_ = 0;
  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> ctx_;
  bool complete_ = true;
  const std::vector<ProcessId>* perm_ = nullptr;
};

/// Generic field helper for templated protocol state: scalars go through
/// StateEncoder::field, types with an encode_state member recurse, and
/// the container overloads below handle optionals and sequences. Lets
/// `OmegaSigmaConsensusModule<V>` encode without knowing V.
template <typename T>
void encode_field(StateEncoder& enc, std::string_view tag, const T& value) {
  if constexpr (requires(const T& t, StateEncoder& e) { t.encode_state(e); }) {
    enc.push(tag);
    value.encode_state(enc);
    enc.pop();
  } else {
    enc.field(tag, value);
  }
}

template <typename T>
void encode_field(StateEncoder& enc, std::string_view tag,
                  const std::optional<T>& value) {
  enc.field(tag, value.has_value());
  if (value.has_value()) {
    enc.push(tag);
    encode_field(enc, "val", *value);
    enc.pop();
  }
}

/// Sequences fold length plus position-keyed elements (order matters —
/// a log and its permutation are different states).
template <typename T>
void encode_field(StateEncoder& enc, std::string_view tag,
                  const std::vector<T>& value) {
  enc.push(tag);
  enc.field("#", value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    enc.push("at", i);
    encode_field(enc, "elem", value[i]);
    enc.pop();
  }
  enc.pop();
}

/// Sets fold as unordered collections of element digests.
template <typename T>
void encode_field(StateEncoder& enc, std::string_view tag,
                  const std::set<T>& value) {
  enc.push(tag);
  enc.field("#", value.size());
  for (const T& x : value) {
    StateEncoder sub = enc.child();
    encode_field(sub, "elem", x);
    enc.merge("in", sub);
  }
  enc.pop();
}

}  // namespace wfd::sim
