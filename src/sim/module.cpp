#include "sim/module.h"

#include "sim/simulator.h"

namespace wfd::sim {

ProcessId Module::self() const { return host().self(); }
int Module::n() const { return host().n(); }
Time Module::now() const { return host().now(); }
const fd::FdValue& Module::fd() const { return host().fd_sample(); }

fd::FdValue Module::detector() const {
  if (fd_source_ != nullptr) return fd_source_->fd_value();
  return fd();
}

void Module::send(ProcessId to, PayloadPtr payload) {
  if (transport_ != nullptr) {
    transport_->module_send(name_, to, std::move(payload));
    return;
  }
  host().module_out(name_, to, std::move(payload));
}

void Module::broadcast(PayloadPtr payload, bool include_self) {
  if (transport_ != nullptr) {
    const int count = n();
    for (ProcessId q = 0; q < count; ++q) {
      if (!include_self && q == self()) continue;
      transport_->module_send(name_, q, payload);
    }
    return;
  }
  host().module_broadcast(name_, std::move(payload), include_self);
}

void Module::emit(const std::string& kind, std::int64_t value) {
  host().emit_event(kind, value);
}

Rng& Module::rng() { return host().host_rng(); }

ModuleHost& Module::host() const {
  WFD_CHECK(host_ != nullptr);
  return *host_;
}

ModuleHost::~ModuleHost() = default;

Module* ModuleHost::find_module(const std::string& module_name) const {
  auto it = by_name_.find(module_name);
  return it == by_name_.end() ? nullptr : it->second;
}

void ModuleHost::attach_module(std::unique_ptr<Module> mod,
                               std::string module_name) {
  Module& ref = *mod;
  mod->host_ = this;
  mod->name_ = std::move(module_name);
  by_name_.emplace(mod->name_, mod.get());
  modules_.push_back(std::move(mod));
  if (started_) start_module(ref);
}

void ModuleHost::start_module(Module& m) {
  m.on_start();
  // Replay messages that arrived before the module existed.
  auto it = undelivered_.find(m.name());
  if (it != undelivered_.end()) {
    auto buffered = std::move(it->second);
    undelivered_.erase(it);
    for (const BufferedMsg& bm : buffered) {
      m.on_message(bm.from, *bm.inner);
    }
  }
}

void ModuleHost::start_modules() {
  started_ = true;
  // Snapshot: modules may add further modules while starting (those are
  // started inline by add_module since started_ is already true).
  const std::size_t initial = modules_.size();
  for (std::size_t i = 0; i < initial; ++i) start_module(*modules_[i]);
}

void ModuleHost::dispatch_module_msg(ProcessId from,
                                     const ModuleEnvelope& env) {
  if (Module* m = find_module(env.module)) {
    m->on_message(from, *env.inner);
  } else {
    undelivered_[env.module].push_back(BufferedMsg{from, env.inner});
  }
}

void ModuleHost::tick_modules() {
  // Tick by index: modules added during this sweep are ticked too, which
  // is harmless (their on_tick sees a consistent started state).
  for (std::size_t i = 0; i < modules_.size(); ++i) modules_[i]->on_tick();
}

bool ModuleHost::modules_done() const {
  for (const auto& m : modules_) {
    if (!m->done()) return false;
  }
  return true;
}

bool ModuleHost::modules_tick_noop() const {
  for (const auto& m : modules_) {
    if (!m->tick_noop()) return false;
  }
  return true;
}

void ModuleHost::encode_modules(StateEncoder& enc) const {
  enc.field("started", started_);
  for (const auto& m : modules_) {
    enc.push("module");
    enc.push(m->name());
    m->encode_state(enc);
    enc.pop();
    enc.pop();
  }
  // Messages buffered for modules that do not exist yet: a multiset per
  // target name (each buffered message merged as one field).
  for (const auto& [target, msgs] : undelivered_) {
    enc.push("undelivered");
    enc.push(target);
    for (const BufferedMsg& bm : msgs) {
      StateEncoder sub = enc.child();
      sub.pid_field("from", bm.from);
      bm.inner->encode_state(sub);
      enc.merge("msg", sub);
    }
    enc.pop();
    enc.pop();
  }
}

void ModularProcess::on_start(Context& ctx) {
  current_ = &ctx;
  start_modules();
  tick_modules();
  current_ = nullptr;
}

void ModularProcess::on_step(Context& ctx, const Envelope* msg) {
  current_ = &ctx;
  if (msg != nullptr && msg->payload != nullptr) {
    const auto* env = payload_cast<ModuleEnvelope>(*msg->payload);
    WFD_CHECK_MSG(env != nullptr,
                  "ModularProcess received a non-module message");
    dispatch_module_msg(msg->from, *env);
  }
  tick_modules();
  current_ = nullptr;
}

bool ModularProcess::tick_noop() const {
  if (!modules_started()) return false;
  return modules_tick_noop();
}

void ModularProcess::encode_state(StateEncoder& enc) const {
  encode_modules(enc);
}

bool ModularProcess::done() const {
  if (!modules_started()) return false;  // Not done before the first step.
  return modules_done();
}

ProcessId ModularProcess::self() const { return ctx().self(); }
int ModularProcess::n() const { return ctx().n(); }
Time ModularProcess::now() const { return ctx().now(); }
const fd::FdValue& ModularProcess::fd_sample() const { return ctx().fd(); }

void ModularProcess::module_out(const std::string& module, ProcessId to,
                                PayloadPtr payload) {
  ctx().send(to, make_payload<ModuleEnvelope>(module, std::move(payload)));
}

void ModularProcess::module_broadcast(const std::string& module,
                                      PayloadPtr payload, bool include_self) {
  // One shared allocation for the whole broadcast, as before the seam.
  ctx().broadcast(make_payload<ModuleEnvelope>(module, std::move(payload)),
                  include_self);
}

void ModularProcess::emit_event(const std::string& kind, std::int64_t value) {
  ctx().emit(kind, value);
}

Rng& ModularProcess::host_rng() { return ctx().rng(); }

}  // namespace wfd::sim
