#include "sim/module.h"

namespace wfd::sim {

ProcessId Module::self() const { return host().ctx().self(); }
int Module::n() const { return host().ctx().n(); }
Time Module::now() const { return host().ctx().now(); }
const fd::FdValue& Module::fd() const { return host().ctx().fd(); }

fd::FdValue Module::detector() const {
  if (fd_source_ != nullptr) return fd_source_->fd_value();
  return fd();
}

void Module::send(ProcessId to, PayloadPtr payload) {
  if (transport_ != nullptr) {
    transport_->module_send(name_, to, std::move(payload));
    return;
  }
  host().ctx().send(
      to, make_payload<ModuleEnvelope>(name_, std::move(payload)));
}

void Module::broadcast(PayloadPtr payload, bool include_self) {
  if (transport_ != nullptr) {
    const int count = n();
    for (ProcessId q = 0; q < count; ++q) {
      if (!include_self && q == self()) continue;
      transport_->module_send(name_, q, payload);
    }
    return;
  }
  auto wrapped = make_payload<ModuleEnvelope>(name_, std::move(payload));
  host().ctx().broadcast(std::move(wrapped), include_self);
}

void Module::emit(const std::string& kind, std::int64_t value) {
  host().ctx().emit(kind, value);
}

Rng& Module::rng() { return host().ctx().rng(); }

ModularProcess& Module::host() const {
  WFD_CHECK(host_ != nullptr);
  return *host_;
}

Module* ModularProcess::find_module(const std::string& module_name) const {
  auto it = by_name_.find(module_name);
  return it == by_name_.end() ? nullptr : it->second;
}

void ModularProcess::start_module(Module& m) {
  m.on_start();
  // Replay messages that arrived before the module existed.
  auto it = undelivered_.find(m.name());
  if (it != undelivered_.end()) {
    auto buffered = std::move(it->second);
    undelivered_.erase(it);
    for (const BufferedMsg& bm : buffered) {
      m.on_message(bm.from, *bm.inner);
    }
  }
}

void ModularProcess::on_start(Context& ctx) {
  current_ = &ctx;
  started_ = true;
  // Snapshot: modules may add further modules while starting (those are
  // started inline by add_module since started_ is already true).
  const std::size_t initial = modules_.size();
  for (std::size_t i = 0; i < initial; ++i) start_module(*modules_[i]);
  for (std::size_t i = 0; i < modules_.size(); ++i) modules_[i]->on_tick();
  current_ = nullptr;
}

void ModularProcess::dispatch(ProcessId from, const ModuleEnvelope& env) {
  if (Module* m = find_module(env.module)) {
    m->on_message(from, *env.inner);
  } else {
    undelivered_[env.module].push_back(BufferedMsg{from, env.inner});
  }
}

void ModularProcess::on_step(Context& ctx, const Envelope* msg) {
  current_ = &ctx;
  if (msg != nullptr && msg->payload != nullptr) {
    const auto* env = payload_cast<ModuleEnvelope>(*msg->payload);
    WFD_CHECK_MSG(env != nullptr,
                  "ModularProcess received a non-module message");
    dispatch(msg->from, *env);
  }
  // Tick by index: modules added during this step are ticked too, which
  // is harmless (their on_tick sees a consistent started state).
  for (std::size_t i = 0; i < modules_.size(); ++i) modules_[i]->on_tick();
  current_ = nullptr;
}

bool ModularProcess::tick_noop() const {
  if (!started_) return false;
  for (const auto& m : modules_) {
    if (!m->tick_noop()) return false;
  }
  return true;
}

void ModularProcess::encode_state(StateEncoder& enc) const {
  enc.field("started", started_);
  for (const auto& m : modules_) {
    enc.push("module");
    enc.push(m->name());
    m->encode_state(enc);
    enc.pop();
    enc.pop();
  }
  // Messages buffered for modules that do not exist yet: a multiset per
  // target name (each buffered message merged as one field).
  for (const auto& [target, msgs] : undelivered_) {
    enc.push("undelivered");
    enc.push(target);
    for (const BufferedMsg& bm : msgs) {
      StateEncoder sub;
      sub.field("from", bm.from);
      bm.inner->encode_state(sub);
      enc.merge("msg", sub);
    }
    enc.pop();
    enc.pop();
  }
}

bool ModularProcess::done() const {
  if (!started_) return false;  // Not done before the first step.
  for (const auto& m : modules_) {
    if (!m->done()) return false;
  }
  return true;
}

}  // namespace wfd::sim
