// Failure patterns: the function F mapping each time to the set of
// processes that have crashed through that time. Since crashes are
// permanent, a pattern is fully described by each process's crash time.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/process_set.h"
#include "common/types.h"

namespace wfd::sim {

class FailurePattern {
 public:
  /// A pattern over n processes in which nobody crashes.
  explicit FailurePattern(int n);

  /// Schedules p to crash at time t (p takes no step at any time >= t).
  /// Overwrites any earlier crash time for p.
  void crash_at(ProcessId p, Time t);

  [[nodiscard]] int n() const { return static_cast<int>(crash_time_.size()); }

  /// Crash time of p, or kNever.
  [[nodiscard]] Time crash_time(ProcessId p) const;

  /// Whether p has crashed by time t, i.e. p is in F(t).
  [[nodiscard]] bool crashed(ProcessId p, Time t) const;

  /// Whether p is alive at time t (may take a step at t).
  [[nodiscard]] bool alive(ProcessId p, Time t) const {
    return !crashed(p, t);
  }

  /// F(t): all processes crashed through time t.
  [[nodiscard]] ProcessSet crashed_by(Time t) const;

  /// faulty(F): processes that crash at some time.
  [[nodiscard]] ProcessSet faulty() const;

  /// correct(F) = Pi - faulty(F).
  [[nodiscard]] ProcessSet correct() const;

  /// Time of the earliest crash, or kNever when the pattern is crash-free.
  [[nodiscard]] Time first_crash_time() const;

  /// Whether any failure has occurred by time t (F(t) != empty).
  [[nodiscard]] bool failure_by(Time t) const {
    return first_crash_time() <= t;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FailurePattern&, const FailurePattern&) =
      default;

 private:
  std::vector<Time> crash_time_;
};

std::ostream& operator<<(std::ostream& os, const FailurePattern& f);

}  // namespace wfd::sim
