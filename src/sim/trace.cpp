#include "sim/trace.h"

namespace wfd::sim {

void Trace::record_sample(ProcessId p, Time t, const fd::FdValue& v) {
  if (record_samples_) samples_.push_back(FdSampleRecord{p, t, v});
}

void Trace::record_event(ProcessId p, Time t, std::string kind,
                         std::int64_t value) {
  events_.push_back(EventRecord{p, t, std::move(kind), value});
}

void Trace::count_step(bool lambda) {
  ++stats_.steps;
  if (lambda) ++stats_.lambda_steps;
}

void Trace::count_send() { ++stats_.messages_sent; }
void Trace::count_delivery() { ++stats_.messages_delivered; }

std::vector<EventRecord> Trace::events_of_kind(const std::string& kind) const {
  std::vector<EventRecord> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

EventRecord Trace::first_event(ProcessId p, const std::string& kind) const {
  for (const auto& e : events_) {
    if (e.p == p && e.kind == kind) return e;
  }
  EventRecord none;
  none.p = p;
  none.t = kNever;
  return none;
}

}  // namespace wfd::sim
