#include "sim/trace.h"

namespace wfd::sim {

void Trace::record_sample(ProcessId p, Time t, const fd::FdValue& v) {
  if (record_samples_) samples_.push_back(FdSampleRecord{p, t, v});
}

void Trace::record_event(ProcessId p, Time t, std::string kind,
                         std::int64_t value) {
  events_.push_back(EventRecord{p, t, std::move(kind), value});
}

void Trace::count_step(bool lambda) {
  ++stats_.steps;
  if (lambda) ++stats_.lambda_steps;
}

void Trace::count_send() { ++stats_.messages_sent; }
void Trace::count_delivery() { ++stats_.messages_delivered; }

std::vector<EventRecord> Trace::events_of_kind(const std::string& kind) const {
  std::vector<EventRecord> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string Trace::to_string() const {
  std::string out;
  out.reserve(64 + events_.size() * 24 + samples_.size() * 32);
  out += "steps=" + std::to_string(stats_.steps);
  out += " sent=" + std::to_string(stats_.messages_sent);
  out += " delivered=" + std::to_string(stats_.messages_delivered);
  out += " lambda=" + std::to_string(stats_.lambda_steps);
  out += "\n";
  for (const auto& e : events_) {
    out += "e p" + std::to_string(e.p) + " t" + std::to_string(e.t) + " " +
           e.kind + "=" + std::to_string(e.value) + "\n";
  }
  for (const auto& s : samples_) {
    out += "s p" + std::to_string(s.p) + " t" + std::to_string(s.t) + " " +
           s.value.to_string() + "\n";
  }
  return out;
}

EventRecord Trace::first_event(ProcessId p, const std::string& kind) const {
  for (const auto& e : events_) {
    if (e.p == p && e.kind == kind) return e;
  }
  EventRecord none;
  none.p = p;
  none.t = kNever;
  return none;
}

}  // namespace wfd::sim
