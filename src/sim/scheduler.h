// Schedulers decide, at each global step, which process takes a step and
// which (if any) pending message it receives. Every scheduler shipped
// here satisfies the run conditions of the model: correct processes take
// unboundedly many steps and every message addressed to a correct process
// is eventually delivered.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/choice.h"
#include "sim/failure_pattern.h"
#include "sim/network.h"

namespace wfd::inject {
class FaultState;
}  // namespace wfd::inject

namespace wfd::sim {

/// The scheduler's decision for one global step.
struct StepChoice {
  /// What the step does. kDeliver covers the normal moves (start, lambda,
  /// message delivery); the others are adversary moves from an injected
  /// fault plan — no process code runs during them.
  enum class Action : std::uint8_t {
    kDeliver = 0,  ///< Normal step (start / lambda / delivery).
    kDrop = 1,     ///< Discard pending message `message_id` (lossy link).
    kDup = 2,      ///< Re-enqueue a copy of pending message `message_id`.
    kCrash = 3,    ///< Crash process p at the current time.
  };

  ProcessId p = kNoProcess;      ///< kNoProcess: no process can step (halt).
  std::uint64_t message_id = 0;  ///< 0: lambda step.
  Action action = Action::kDeliver;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once before the run.
  virtual void begin_run(int n, const FailurePattern& f,
                         std::uint64_t seed) = 0;

  /// Decide the next step.
  virtual StepChoice next(const Network& net, const FailurePattern& f,
                          Time now) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Deterministic: processes step cyclically (skipping crashed ones) and
/// always receive their oldest pending message.
class RoundRobinScheduler : public Scheduler {
 public:
  void begin_run(int n, const FailurePattern& f, std::uint64_t seed) override;
  StepChoice next(const Network& net, const FailurePattern& f,
                  Time now) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  int n_ = 0;
  ProcessId cursor_ = 0;
};

/// Randomized fair scheduler. Each "round" steps every alive process once
/// in a fresh random order. A stepping process receives: nothing with
/// probability lambda_prob; otherwise its oldest pending message with
/// probability oldest_prob, else a uniformly random pending one. Any
/// message older than force_age steps is force-delivered first, which
/// bounds starvation and realises "finite but unbounded" delays.
class RandomFairScheduler : public Scheduler {
 public:
  struct Options {
    double lambda_prob = 0.15;
    double oldest_prob = 0.5;
    Time force_age = 512;
  };

  RandomFairScheduler() : RandomFairScheduler(Options{}) {}
  explicit RandomFairScheduler(Options opt) : opt_(opt), rng_(0) {}

  void begin_run(int n, const FailurePattern& f, std::uint64_t seed) override;
  StepChoice next(const Network& net, const FailurePattern& f,
                  Time now) override;
  [[nodiscard]] std::string name() const override { return "random-fair"; }

 private:
  void refill_round(const FailurePattern& f, Time now);

  Options opt_;
  int n_ = 0;
  Rng rng_;
  std::vector<ProcessId> round_;  ///< Remaining processes of this round.
};

/// Partially synchronous scheduler: before GST it behaves like
/// RandomFairScheduler (arbitrary but fair); from GST on, processes step
/// round-robin and always receive their oldest pending message, so
/// message delay and relative speeds are bounded. Heartbeat-based
/// detector implementations (Omega, FS) are correct under this scheduler.
class PartialSynchronyScheduler : public Scheduler {
 public:
  explicit PartialSynchronyScheduler(Time gst,
                                     RandomFairScheduler::Options pre_opts =
                                         RandomFairScheduler::Options{});

  void begin_run(int n, const FailurePattern& f, std::uint64_t seed) override;
  StepChoice next(const Network& net, const FailurePattern& f,
                  Time now) override;
  [[nodiscard]] std::string name() const override {
    return "partial-synchrony";
  }

  [[nodiscard]] Time gst() const { return gst_; }

 private:
  Time gst_;
  RandomFairScheduler pre_;
  RoundRobinScheduler post_;
};

/// Wraps a base scheduler and additionally withholds any message for
/// which `blocked(env, now)` is true — as long as withholding it keeps
/// the run legal (the filter must stop blocking eventually; use
/// time-bounded filters). Used for adversarial tests: partitions,
/// quorum-targeted delays, leader isolation.
class FilteredScheduler : public Scheduler {
 public:
  using Filter = std::function<bool(const Envelope&, Time now)>;

  FilteredScheduler(std::unique_ptr<Scheduler> base, Filter blocked);

  void begin_run(int n, const FailurePattern& f, std::uint64_t seed) override;
  StepChoice next(const Network& net, const FailurePattern& f,
                  Time now) override;
  [[nodiscard]] std::string name() const override {
    return "filtered(" + base_->name() + ")";
  }

 private:
  std::unique_ptr<Scheduler> base_;
  Filter blocked_;
};

/// Scheduler driven entirely by an external ChoiceSource: at every step
/// it enumerates the legal moves — for each alive process, delivering
/// one of its pending messages or taking a lambda step — and asks the
/// source which one happens. With a FixedChoices source this replays a
/// recorded schedule exactly; with RandomChoices it samples schedules;
/// with the DFS source of src/explore/ it enumerates them.
///
/// Unlike the other schedulers, ReplayScheduler does NOT enforce the run
/// conditions (a decision sequence may starve a message forever); it is
/// meant for bounded exploration and replay, where the horizon — not the
/// scheduler — bounds the run. Safety properties checked on such runs
/// are still sound: every explored prefix is a prefix of some legal run.
class ReplayScheduler : public Scheduler {
 public:
  struct Options {
    /// Partial-order reduction: offer only the oldest pending message of
    /// each (sender -> receiver) channel, i.e. explore per-channel-FIFO
    /// deliveries only. Cuts the branching factor from "all pending" to
    /// "one per sender" at the cost of cross-channel reorderings only.
    bool oldest_per_channel = true;
    /// Offer a lambda step even when messages are pending. Required for
    /// protocols that act on timeouts; disable to focus on
    /// message-driven branching.
    bool lambda_always = true;
    /// Borrowed fault ledger; when set (and its plan allows anything) the
    /// menu additionally offers adversary moves — crash labels for
    /// processes the budget permits crashing, drop/duplicate labels for
    /// every delivery on the menu whose link budget permits. Null: menus
    /// are byte-identical to the fault-free scheduler.
    const inject::FaultState* faults = nullptr;
  };

  /// `choices` is borrowed and must outlive the scheduler.
  explicit ReplayScheduler(ChoiceSource* choices)
      : ReplayScheduler(choices, Options{}) {}
  ReplayScheduler(ChoiceSource* choices, Options opt);

  void begin_run(int n, const FailurePattern& f, std::uint64_t seed) override;
  StepChoice next(const Network& net, const FailurePattern& f,
                  Time now) override;
  [[nodiscard]] std::string name() const override { return "replay"; }

  /// Stable label of a schedule option: which process steps, which
  /// message (0 = lambda) it receives, and — bits 46..47 of the message
  /// field — which action the step takes (0 = deliver/λ/start, so plain
  /// delivery labels are byte-identical to the pre-fault encoding).
  /// Stable across reorderings of other processes' steps, which is what
  /// sleep-set reduction needs.
  static constexpr std::uint64_t kMessageMask =
      (std::uint64_t{1} << 46) - 1;
  static std::uint64_t label(ProcessId p, std::uint64_t message_id) {
    return ((static_cast<std::uint64_t>(p) + 1) << 48) |
           (message_id & kMessageMask);
  }
  static std::uint64_t label(ProcessId p, std::uint64_t message_id,
                             StepChoice::Action action) {
    return label(p, message_id) |
           (static_cast<std::uint64_t>(action) << 46);
  }
  static ProcessId label_process(std::uint64_t label) {
    return static_cast<ProcessId>(label >> 48) - 1;
  }
  /// The message id a label acts on (0 = lambda or start step).
  static std::uint64_t label_message(std::uint64_t label) {
    return label & kMessageMask;
  }
  /// The action a label performs (kDeliver for all pre-fault labels).
  static StepChoice::Action label_action(std::uint64_t label) {
    return static_cast<StepChoice::Action>((label >> 46) & 3);
  }
  /// Whether a label is an adversary move (crash/drop/duplicate).
  static bool label_is_fault(std::uint64_t label) {
    return label_action(label) != StepChoice::Action::kDeliver;
  }

 private:
  ChoiceSource* choices_;
  Options opt_;
  int n_ = 0;
  std::vector<bool> started_;
};

}  // namespace wfd::sim
