// Schedulers decide, at each global step, which process takes a step and
// which (if any) pending message it receives. Every scheduler shipped
// here satisfies the run conditions of the model: correct processes take
// unboundedly many steps and every message addressed to a correct process
// is eventually delivered.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/failure_pattern.h"
#include "sim/network.h"

namespace wfd::sim {

/// The scheduler's decision for one global step.
struct StepChoice {
  ProcessId p = kNoProcess;      ///< kNoProcess: no process can step (halt).
  std::uint64_t message_id = 0;  ///< 0: lambda step.
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once before the run.
  virtual void begin_run(int n, const FailurePattern& f,
                         std::uint64_t seed) = 0;

  /// Decide the next step.
  virtual StepChoice next(const Network& net, const FailurePattern& f,
                          Time now) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Deterministic: processes step cyclically (skipping crashed ones) and
/// always receive their oldest pending message.
class RoundRobinScheduler : public Scheduler {
 public:
  void begin_run(int n, const FailurePattern& f, std::uint64_t seed) override;
  StepChoice next(const Network& net, const FailurePattern& f,
                  Time now) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  int n_ = 0;
  ProcessId cursor_ = 0;
};

/// Randomized fair scheduler. Each "round" steps every alive process once
/// in a fresh random order. A stepping process receives: nothing with
/// probability lambda_prob; otherwise its oldest pending message with
/// probability oldest_prob, else a uniformly random pending one. Any
/// message older than force_age steps is force-delivered first, which
/// bounds starvation and realises "finite but unbounded" delays.
class RandomFairScheduler : public Scheduler {
 public:
  struct Options {
    double lambda_prob = 0.15;
    double oldest_prob = 0.5;
    Time force_age = 512;
  };

  RandomFairScheduler() : RandomFairScheduler(Options{}) {}
  explicit RandomFairScheduler(Options opt) : opt_(opt), rng_(0) {}

  void begin_run(int n, const FailurePattern& f, std::uint64_t seed) override;
  StepChoice next(const Network& net, const FailurePattern& f,
                  Time now) override;
  [[nodiscard]] std::string name() const override { return "random-fair"; }

 private:
  void refill_round(const FailurePattern& f, Time now);

  Options opt_;
  int n_ = 0;
  Rng rng_;
  std::vector<ProcessId> round_;  ///< Remaining processes of this round.
};

/// Partially synchronous scheduler: before GST it behaves like
/// RandomFairScheduler (arbitrary but fair); from GST on, processes step
/// round-robin and always receive their oldest pending message, so
/// message delay and relative speeds are bounded. Heartbeat-based
/// detector implementations (Omega, FS) are correct under this scheduler.
class PartialSynchronyScheduler : public Scheduler {
 public:
  explicit PartialSynchronyScheduler(Time gst,
                                     RandomFairScheduler::Options pre_opts =
                                         RandomFairScheduler::Options{});

  void begin_run(int n, const FailurePattern& f, std::uint64_t seed) override;
  StepChoice next(const Network& net, const FailurePattern& f,
                  Time now) override;
  [[nodiscard]] std::string name() const override {
    return "partial-synchrony";
  }

  [[nodiscard]] Time gst() const { return gst_; }

 private:
  Time gst_;
  RandomFairScheduler pre_;
  RoundRobinScheduler post_;
};

/// Wraps a base scheduler and additionally withholds any message for
/// which `blocked(env, now)` is true — as long as withholding it keeps
/// the run legal (the filter must stop blocking eventually; use
/// time-bounded filters). Used for adversarial tests: partitions,
/// quorum-targeted delays, leader isolation.
class FilteredScheduler : public Scheduler {
 public:
  using Filter = std::function<bool(const Envelope&, Time now)>;

  FilteredScheduler(std::unique_ptr<Scheduler> base, Filter blocked);

  void begin_run(int n, const FailurePattern& f, std::uint64_t seed) override;
  StepChoice next(const Network& net, const FailurePattern& f,
                  Time now) override;
  [[nodiscard]] std::string name() const override {
    return "filtered(" + base_->name() + ")";
  }

 private:
  std::unique_ptr<Scheduler> base_;
  Filter blocked_;
};

}  // namespace wfd::sim
