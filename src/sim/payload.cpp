#include "sim/payload.h"

#include <typeinfo>

#if defined(__GNUG__)
#include <cxxabi.h>

#include <cstdlib>
#endif

namespace wfd::sim {

namespace {

std::string demangled(const std::type_info& ti) {
#if defined(__GNUG__)
  int status = 0;
  char* raw = abi::__cxa_demangle(ti.name(), nullptr, nullptr, &status);
  if (status == 0 && raw != nullptr) {
    std::string out(raw);
    std::free(raw);
    return out;
  }
#endif
  return ti.name();
}

}  // namespace

std::string Payload::identity() const {
  const std::string_view k = kind();
  if (!k.empty()) return std::string(k);
  return demangled(typeid(*this));
}

}  // namespace wfd::sim
