// The payload-level independence relation the DPOR explorer consumes.
//
// Two deliveries to the same process are independent (their order cannot
// be observed by any continuation) when their payloads commute under the
// contract of Payload::kind()/commutes_with(). The query is symmetric —
// both directions must agree — and fails closed: a payload whose type
// was never audited (empty kind()) is dependent on everything, and its
// identity is recorded so tooling can report the coverage gap.
#pragma once

#include <set>
#include <string>

#include "sim/payload.h"

namespace wfd::sim {

/// True when `a` and `b` commute per their declared contracts. Both
/// payloads must be classified (nonempty kind()) and each must accept
/// the other. When `conservative` is nonnull, the identity of every
/// unclassified payload encountered is inserted into it.
[[nodiscard]] bool payloads_commute(const Payload& a, const Payload& b,
                                    std::set<std::string>* conservative =
                                        nullptr);

}  // namespace wfd::sim
