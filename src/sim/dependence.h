// The payload-level independence relation the DPOR explorer consumes,
// plus the dependence relation for injected-fault labels.
//
// Two deliveries to the same process are independent (their order cannot
// be observed by any continuation) when their payloads commute under the
// contract of Payload::kind()/commutes_with(). The query is symmetric —
// both directions must agree — and fails closed: a payload whose type
// was never audited (empty kind()) is dependent on everything, and its
// identity is recorded so tooling can report the coverage gap.
//
// Fault labels (crash / drop / duplicate, sim/scheduler.h action bits)
// used to be treated as dependent with every other transition, which
// made crash-explore trees an order of magnitude bigger than their
// fault-free twins. The real relation is much sparser (DESIGN.md §12):
//
//  * Every schedule label has one *affected process* — the process whose
//    local state or message queue the step touches: the stepping process
//    for start/lambda/delivery, the crash target for a crash, the
//    delivery target for a drop or duplicate (the in-flight message it
//    consumes or copies lives in that process's queue).
//  * A fault label and a normal step are dependent iff they affect the
//    same process. A crash of p commutes with any step of q != p: the
//    crash does not remove in-flight messages, runs no process code, and
//    queries no detector, so the reached state is identical in either
//    order. Same for drop/dup against steps of other processes.
//  * Fault labels are pairwise dependent (conservatively): crash, drop
//    and dup budgets are global counters, so executing one fault can
//    disable another fault label even on an unrelated link.
//  * Exception: when the scenario's detector output depends on the
//    evolving failure pattern (an FS or Psi component reads
//    failure_by(t); see ScenarioFactory::pattern_sensitive), a crash IS
//    observable by every process through its next query, so crash labels
//    stay dependent with everything. Omega/Sigma-only scenarios — static
//    or per-query, including --fd=adversarial — never re-read the
//    pattern before stabilization, and exploration requires
//    stabilization == never, so they take the sparse relation.
//
// FD flap labels are not part of this relation: detector choices are
// value choices at a fixed query point (kFd frames), not reorderable
// events — enumerating their menu plus fingerprint merging already
// covers them.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "common/types.h"
#include "sim/payload.h"

namespace wfd::sim {

/// True when `a` and `b` commute per their declared contracts. Both
/// payloads must be classified (nonempty kind()) and each must accept
/// the other. When `conservative` is nonnull, the identity of every
/// unclassified payload encountered is inserted into it.
[[nodiscard]] bool payloads_commute(const Payload& a, const Payload& b,
                                    std::set<std::string>* conservative =
                                        nullptr);

/// The process whose state a schedule label touches: the stepping
/// process for start/lambda/delivery and for crash labels, the delivery
/// target for drop/dup labels (the label already encodes it).
[[nodiscard]] ProcessId label_affected_process(std::uint64_t label);

/// True when fault label `fault` must be ordered against an executed
/// step whose affected process is `step_process`. `pattern_sensitive`
/// is the scenario-level flag: when the detector reads the evolving
/// failure pattern, crashes are dependent with everything.
[[nodiscard]] bool fault_step_dependent(std::uint64_t fault,
                                        ProcessId step_process,
                                        bool pattern_sensitive);

/// True when two labels, at least one of them a fault, must be ordered
/// against each other. Fault pairs are always dependent (shared global
/// budgets); a fault against a normal label reduces to
/// fault_step_dependent on the normal label's affected process.
[[nodiscard]] bool fault_labels_dependent(std::uint64_t a, std::uint64_t b,
                                          bool pattern_sensitive);

}  // namespace wfd::sim
