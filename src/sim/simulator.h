// The discrete-event simulator: owns the processes, the message buffer,
// the failure pattern, the failure-detector oracle and the scheduler, and
// drives the run one atomic step at a time. Runs are fully deterministic
// given (processes, pattern, oracle, scheduler, seed).
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fd/oracle.h"
#include "inject/fault_plan.h"
#include "sim/failure_pattern.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace wfd::sim {

struct SimConfig {
  int n = 3;
  Time max_steps = 200000;
  std::uint64_t seed = 1;
  bool record_fd_samples = false;
};

struct RunResult {
  Time steps = 0;      ///< Global steps executed by this call.
  bool all_done = false;  ///< Every alive process reported done().
};

/// What the most recent step() did — consumed by the explorer's
/// happens-before bookkeeping, which must see every step, including
/// forced moves that never reach a ChoiceSource.
struct LastStep {
  ProcessId p = kNoProcess;       ///< Who acted; kNoProcess before step 1.
  std::uint64_t delivered = 0;    ///< Delivered message id; 0 for λ/start.
  bool was_start = false;         ///< True when the step was p's on_start.
  /// λ step whose process declared its tick a no-op (Process::tick_noop,
  /// evaluated as the step began); always false for starts/deliveries.
  bool tick_noop = false;
  /// What the step did; non-kDeliver steps are adversary moves (injected
  /// fault) during which no process code ran and `delivered` stays 0.
  StepChoice::Action action = StepChoice::Action::kDeliver;
  /// The message the adversary dropped or duplicated (kDrop/kDup).
  std::uint64_t fault_msg = 0;
  /// Fresh id the duplicate was enqueued under (kDup only).
  std::uint64_t dup_id = 0;
  /// Sender of the message the step consumed (delivered, dropped or
  /// duplicated); kNoProcess for λ/start/crash. Identifies the directed
  /// channel for channel-granular communication fairness.
  ProcessId from = kNoProcess;
};

class Simulator {
 public:
  Simulator(SimConfig cfg, FailurePattern pattern,
            std::unique_ptr<fd::Oracle> oracle,
            std::unique_ptr<Scheduler> scheduler);

  /// Register process p (must be called for p = 0..n-1, in order, before
  /// the first step). Returns a reference to the constructed process.
  template <typename P, typename... Args>
  P& add_process(Args&&... args) {
    auto proc = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *proc;
    procs_.push_back(std::move(proc));
    started_p_.push_back(false);
    return ref;
  }

  /// Run until every alive process is done or max_steps is reached.
  RunResult run();

  /// Run at most `steps` further global steps (resumable).
  RunResult run_for(Time steps);

  /// Execute one global step. Returns false when the run has halted
  /// (max_steps reached, all alive processes done, or everyone crashed).
  bool step();

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] int n() const { return cfg_.n; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] const FailurePattern& pattern() const { return pattern_; }

  /// Install a fault ledger (fault injection). Call before the first
  /// step; the same FaultState must be handed (borrowed) to the
  /// scheduler's menu via ReplayScheduler::Options::faults.
  void adopt_faults(std::unique_ptr<inject::FaultState> faults) {
    faults_ = std::move(faults);
  }
  [[nodiscard]] const inject::FaultState* faults() const {
    return faults_.get();
  }

  Process& process(ProcessId p);
  Network& network() { return net_; }
  Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }
  fd::Oracle& oracle() { return *oracle_; }

  /// True iff every process that is alive now reports done().
  [[nodiscard]] bool all_alive_done() const;

  /// What the most recent successful step() did.
  [[nodiscard]] const LastStep& last_step() const { return last_step_; }

  /// Whether a lambda step of p taken right now would be inert (p has
  /// started and declares Process::tick_noop) — the end-of-run analogue
  /// of LastStep::tick_noop for hypothetical never-executed lambdas.
  [[nodiscard]] bool process_tick_noop(ProcessId p) const;

  /// Fold the complete system state — per-process encodings, the
  /// in-flight message multiset, pending crash deltas and the oracle's
  /// latched history — into `enc`. Order-insensitive; see StateEncoder.
  void encode_state(StateEncoder& enc) const;

  /// 64-bit digest of encode_state, or nullopt when any component is
  /// opaque (in which case pruning on it would be unsound).
  [[nodiscard]] std::optional<std::uint64_t> state_fingerprint() const;

  /// When false, run()/run_for()/step() keep going after every process
  /// reports done() — for fixed-horizon runs of service protocols
  /// (detector implementations, extractions) that never "finish".
  void set_halt_on_done(bool halt) { halt_on_done_ = halt; }

 private:
  friend class Context;

  void ensure_started();

  SimConfig cfg_;
  FailurePattern pattern_;
  std::unique_ptr<inject::FaultState> faults_;
  std::unique_ptr<fd::Oracle> oracle_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<bool> started_p_;
  std::vector<Rng> proc_rng_;
  Network net_;
  Trace trace_;
  Time now_ = 0;
  bool started_ = false;
  bool halt_on_done_ = true;
  LastStep last_step_;
};

/// Per-step view a process gets of the world: its identity, the failure
/// detector value sampled in this step, and the ability to send messages
/// and record trace events. Valid only for the duration of the step.
class Context {
 public:
  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] int n() const { return sim_->n(); }
  [[nodiscard]] Time now() const { return sim_->now(); }

  /// The failure detector value seen in this step.
  [[nodiscard]] const fd::FdValue& fd() const { return fd_; }

  void send(ProcessId to, PayloadPtr payload);

  /// Send to every process (optionally including self). Self-delivery
  /// goes through the message buffer like any other message.
  void broadcast(PayloadPtr payload, bool include_self = true);

  /// Record a protocol-level trace event (e.g. a decision).
  void emit(const std::string& kind, std::int64_t value);

  /// Per-process deterministic randomness for protocol-internal choices.
  Rng& rng();

 private:
  friend class Simulator;
  Context(Simulator& sim, ProcessId self, fd::FdValue fd)
      : sim_(&sim), self_(self), fd_(std::move(fd)) {}

  Simulator* sim_;
  ProcessId self_;
  fd::FdValue fd_;
};

}  // namespace wfd::sim
