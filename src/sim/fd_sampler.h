// Records the output of an FdSource (an implemented or extracted
// detector) as FdSampleRecords, so the history checkers can validate a
// detector *implementation* exactly like an oracle history.
#pragma once

#include <vector>

#include "common/check.h"
#include "sim/module.h"
#include "sim/trace.h"

namespace wfd::sim {

class FdSamplerModule : public Module {
 public:
  FdSamplerModule(const FdSource* source, std::vector<FdSampleRecord>* sink,
                  Time period = 1)
      : source_(source), sink_(sink), period_(period) {
    WFD_CHECK(source_ != nullptr && sink_ != nullptr && period_ >= 1);
  }

  void on_message(ProcessId, const Payload&) override {}

  void on_tick() override {
    if (++ticks_ % period_ != 0) return;
    FdSampleRecord rec;
    rec.p = self();
    rec.t = now();
    rec.value = source_->fd_value();
    sink_->push_back(rec);
  }

  /// Only the tick phase influences future behaviour; the recorded
  /// samples are outputs (history checkers that read them must encode
  /// what they need themselves).
  void encode_state(StateEncoder& enc) const override {
    enc.field("phase", ticks_ % period_);
  }

 private:
  const FdSource* source_;
  std::vector<FdSampleRecord>* sink_;
  Time period_;
  Time ticks_ = 0;
};

}  // namespace wfd::sim
