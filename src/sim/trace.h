// Run traces: everything a property checker needs after (or during) a run
// — failure-detector samples, message counts, step counts, and
// protocol-level decision events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "fd/values.h"

namespace wfd::sim {

/// One failure-detector sample taken by a process during a step.
struct FdSampleRecord {
  ProcessId p = kNoProcess;
  Time t = 0;
  fd::FdValue value;
};

/// A protocol-level event (e.g. a consensus decision), reported by
/// algorithm modules so tests can check agreement/validity against the
/// run's failure pattern without poking at module internals.
struct EventRecord {
  ProcessId p = kNoProcess;
  Time t = 0;
  std::string kind;    ///< e.g. "decide", "commit", "write-done".
  std::int64_t value = 0;
};

struct TraceStats {
  std::uint64_t steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t lambda_steps = 0;
};

class Trace {
 public:
  /// When disabled, FD samples are not retained (stats still are).
  void set_record_samples(bool on) { record_samples_ = on; }

  void record_sample(ProcessId p, Time t, const fd::FdValue& v);
  void record_event(ProcessId p, Time t, std::string kind, std::int64_t value);
  void count_step(bool lambda);
  void count_send();
  void count_delivery();

  [[nodiscard]] const std::vector<FdSampleRecord>& samples() const {
    return samples_;
  }
  [[nodiscard]] const std::vector<EventRecord>& events() const {
    return events_;
  }
  [[nodiscard]] const TraceStats& stats() const { return stats_; }

  /// All events of a given kind, in time order.
  [[nodiscard]] std::vector<EventRecord> events_of_kind(
      const std::string& kind) const;

  /// First event of a given kind by process p, if any; t == kNever if none.
  [[nodiscard]] EventRecord first_event(ProcessId p,
                                        const std::string& kind) const;

  /// Canonical textual rendering of the whole trace (stats, every event,
  /// every retained FD sample). Two runs are step-for-step identical iff
  /// their renderings are byte-identical — the determinism regression
  /// tests and the replay machinery compare these strings.
  [[nodiscard]] std::string to_string() const;

 private:
  bool record_samples_ = false;
  std::vector<FdSampleRecord> samples_;
  std::vector<EventRecord> events_;
  TraceStats stats_;
};

}  // namespace wfd::sim
