#include "sim/network.h"

#include "common/check.h"

namespace wfd::sim {

std::uint64_t Network::send(Envelope env) {
  env.id = next_id_++;
  const std::uint64_t id = env.id;
  const ProcessId to = env.to;
  by_id_.emplace(id, std::move(env));
  by_recipient_[to].push_back(id);
  return id;
}

void Network::prune_front(ProcessId p) const {
  auto it = by_recipient_.find(p);
  if (it == by_recipient_.end()) return;
  auto& q = it->second;
  while (!q.empty() && by_id_.find(q.front()) == by_id_.end()) {
    q.pop_front();
  }
}

std::vector<std::uint64_t> Network::pending_for(ProcessId p) const {
  prune_front(p);
  std::vector<std::uint64_t> out;
  auto it = by_recipient_.find(p);
  if (it == by_recipient_.end()) return out;
  out.reserve(it->second.size());
  for (std::uint64_t id : it->second) {
    if (by_id_.find(id) != by_id_.end()) out.push_back(id);
  }
  return out;
}

bool Network::has_pending(ProcessId p) const {
  prune_front(p);
  auto it = by_recipient_.find(p);
  return it != by_recipient_.end() && !it->second.empty();
}

std::uint64_t Network::oldest_for(ProcessId p) const {
  prune_front(p);
  auto it = by_recipient_.find(p);
  if (it == by_recipient_.end() || it->second.empty()) return 0;
  return it->second.front();
}

const Envelope& Network::get(std::uint64_t id) const {
  auto it = by_id_.find(id);
  WFD_CHECK(it != by_id_.end());
  return it->second;
}

bool Network::contains(std::uint64_t id) const {
  return by_id_.find(id) != by_id_.end();
}

Envelope Network::take(std::uint64_t id) {
  auto it = by_id_.find(id);
  WFD_CHECK(it != by_id_.end());
  Envelope env = std::move(it->second);
  by_id_.erase(it);
  // The id stays in its recipient queue; prune_front removes it lazily.
  return env;
}

}  // namespace wfd::sim
