// A message in flight: payload plus addressing and bookkeeping, and an
// optional metadata slot used by transport-level instrumentation (the
// causal participant tracking of the Figure 1 extraction piggybacks on it).
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.h"
#include "sim/payload.h"

namespace wfd::sim {

/// Base class for transport-level metadata piggybacked on every message by
/// an instrumented process (see extract::ParticipantTracker).
struct MessageMeta {
  virtual ~MessageMeta() = default;
};

using MessageMetaPtr = std::shared_ptr<const MessageMeta>;

struct Envelope {
  std::uint64_t id = 0;  ///< Unique per run; assigned by the network.
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Time sent_at = 0;
  PayloadPtr payload;
  MessageMetaPtr meta;  ///< Optional piggybacked instrumentation data.
};

}  // namespace wfd::sim
