// Choice points: every source of nondeterminism a run can expose —
// which process steps, which pending message it receives, which value a
// failure-detector oracle emits from its allowed set, where crashes land
// — is funnelled through one ChoiceSource. A run driven by choice-aware
// components (ReplayScheduler, explore::ChoiceOracle, the explore
// scenario builders) is then a pure function of its decision sequence:
// record the indices and the run replays bit-for-bit; enumerate them and
// the run tree is explored exhaustively (src/explore/).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace wfd::sim {

/// What a choice point is about. Recorded only for diagnostics; replay
/// consumes decisions positionally.
enum class ChoiceKind : std::uint8_t {
  kSchedule = 0,     ///< Which process steps / which message it receives.
  kFd = 1,           ///< Which value an oracle emits from its allowed set.
  kEnvironment = 2,  ///< Environment shape (e.g. crash times).
};

/// One recorded decision sequence. Indices are positional: the i-th
/// entry answers the i-th choose() call of the run.
using DecisionLog = std::vector<std::uint32_t>;

/// The decision maker behind every choice point of a run.
///
/// Contract for callers: call choose() only when there are at least two
/// options (single-option points must be resolved locally, so decision
/// logs contain no forced moves), and enumerate options in a
/// deterministic order. `labels` carries one stable identifier per
/// option (see ReplayScheduler::label); pure replay sources ignore them,
/// the DFS explorer uses them for sleep-set reduction.
class ChoiceSource {
 public:
  virtual ~ChoiceSource() = default;

  /// Pick an option index in [0, labels.size()).
  virtual std::size_t choose(ChoiceKind kind,
                             const std::vector<std::uint64_t>& labels) = 0;
};

/// Replays a fixed decision sequence. Entries are reduced modulo the
/// option count (so shrinking passes can splice logs without going out
/// of range) and an exhausted log keeps answering 0 — the canonical
/// "greedy default" completion every explorer run bottoms out on.
class FixedChoices : public ChoiceSource {
 public:
  FixedChoices() = default;
  explicit FixedChoices(DecisionLog log) : log_(std::move(log)) {}

  std::size_t choose(ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override;

  /// Decisions consumed so far (including defaulted ones past the end).
  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

 private:
  DecisionLog log_;
  std::size_t pos_ = 0;
  std::uint64_t consumed_ = 0;
};

/// Forwards to an inner source and records every answer, producing the
/// decision log that makes any run — including a random one — replayable.
class RecordingChoices : public ChoiceSource {
 public:
  explicit RecordingChoices(ChoiceSource& inner) : inner_(&inner) {}

  std::size_t choose(ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override;

  [[nodiscard]] const DecisionLog& log() const { return log_; }

 private:
  ChoiceSource* inner_;
  DecisionLog log_;
};

/// Uniformly random decisions from a seeded Rng — the campaign driver's
/// random walk through the same choice tree the DFS explorer enumerates.
class RandomChoices : public ChoiceSource {
 public:
  explicit RandomChoices(std::uint64_t seed) : rng_(seed) {}

  std::size_t choose(ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override;

 private:
  Rng rng_;
};

}  // namespace wfd::sim
