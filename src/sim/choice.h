// Choice points: every source of nondeterminism a run can expose —
// which process steps, which pending message it receives, which value a
// failure-detector oracle emits from its allowed set, where crashes land
// — is funnelled through one ChoiceSource. A run driven by choice-aware
// components (ReplayScheduler, explore::ChoiceOracle, the explore
// scenario builders) is then a pure function of its decision sequence:
// record the indices and the run replays bit-for-bit; enumerate them and
// the run tree is explored exhaustively (src/explore/).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace wfd::sim {

/// What a choice point is about. Recorded only for diagnostics; replay
/// consumes decisions positionally.
enum class ChoiceKind : std::uint8_t {
  kSchedule = 0,     ///< Which process steps / which message it receives.
  kFd = 1,           ///< Which value an oracle emits from its allowed set.
  kEnvironment = 2,  ///< Environment shape (e.g. crash times).
};

/// One recorded decision sequence. Indices are positional: the i-th
/// entry answers the i-th choose() call of the run.
using DecisionLog = std::vector<std::uint32_t>;

/// The decision maker behind every choice point of a run.
///
/// Contract for callers: call choose() only when there are at least two
/// options (single-option points must be resolved locally, so decision
/// logs contain no forced moves), and enumerate options in a
/// deterministic order. `labels` carries one stable identifier per
/// option (see ReplayScheduler::label); pure replay sources ignore them,
/// the DFS explorer uses them for sleep-set reduction.
class ChoiceSource {
 public:
  virtual ~ChoiceSource() = default;

  /// Pick an option index in [0, labels.size()).
  virtual std::size_t choose(ChoiceKind kind,
                             const std::vector<std::uint64_t>& labels) = 0;

  /// Observe the *enabled set* of the upcoming decision — every option
  /// the caller could legally pick, including forced single-option
  /// menus that never reach choose(). Choice-aware components call this
  /// once per decision point, before resolving it; the default ignores
  /// it. The fairness bookkeeping of liveness checking lives on this
  /// hook: a lasso is fair only if no process stays enabled (appears
  /// here) forever while never being scheduled, and forced moves are
  /// exactly the ones a decision log cannot reveal.
  virtual void note_enabled(ChoiceKind kind,
                            const std::vector<std::uint64_t>& labels) {
    (void)kind;
    (void)labels;
  }
};

/// Replays a fixed decision sequence. Entries are reduced modulo the
/// option count (so shrinking passes can splice logs without going out
/// of range) and an exhausted log keeps answering 0 — the canonical
/// "greedy default" completion every explorer run bottoms out on.
class FixedChoices : public ChoiceSource {
 public:
  FixedChoices() = default;
  explicit FixedChoices(DecisionLog log) : log_(std::move(log)) {}

  std::size_t choose(ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override;

  /// Decisions consumed so far (including defaulted ones past the end).
  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

 private:
  DecisionLog log_;
  std::size_t pos_ = 0;
  std::uint64_t consumed_ = 0;
};

/// FixedChoices that also captures, per simulator step, the schedule
/// menu (via the note_enabled hook, which fires even for forced
/// single-option menus that never reach choose()) and the schedule
/// label the step executed. The liveness machinery replays with this to
/// audit a step against a recorded state-graph edge (which process ran,
/// was it a delivery / an adversary move) — a landed fingerprint alone
/// cannot tell two self-loop edges apart.
class MenuChoices final : public FixedChoices {
 public:
  using FixedChoices::FixedChoices;

  std::size_t choose(ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override {
    const std::size_t idx = FixedChoices::choose(kind, labels);
    if (kind == ChoiceKind::kSchedule) {
      chosen_ = labels[idx];
      have_chosen_ = true;
    }
    return idx;
  }

  void note_enabled(ChoiceKind kind,
                    const std::vector<std::uint64_t>& labels) override {
    if (kind != ChoiceKind::kSchedule) return;
    menu_ = labels;
    have_chosen_ = false;
  }

  /// The schedule menu of the most recent step.
  [[nodiscard]] const std::vector<std::uint64_t>& menu() const {
    return menu_;
  }

  /// The schedule label the most recent step executed. A forced menu
  /// never reaches choose(), so it falls back to the menu's only entry;
  /// meaningless before the first step (returns 0 on an empty menu).
  [[nodiscard]] std::uint64_t executed() const {
    if (have_chosen_) return chosen_;
    return menu_.empty() ? 0 : menu_.front();
  }

 private:
  std::vector<std::uint64_t> menu_;
  std::uint64_t chosen_ = 0;
  bool have_chosen_ = false;
};

/// Forwards to an inner source and records every answer, producing the
/// decision log that makes any run — including a random one — replayable.
class RecordingChoices : public ChoiceSource {
 public:
  explicit RecordingChoices(ChoiceSource& inner) : inner_(&inner) {}

  std::size_t choose(ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override;

  [[nodiscard]] const DecisionLog& log() const { return log_; }

 private:
  ChoiceSource* inner_;
  DecisionLog log_;
};

/// Uniformly random decisions from a seeded Rng — the campaign driver's
/// random walk through the same choice tree the DFS explorer enumerates.
class RandomChoices : public ChoiceSource {
 public:
  explicit RandomChoices(std::uint64_t seed) : rng_(seed) {}

  std::size_t choose(ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override;

 private:
  Rng rng_;
};

}  // namespace wfd::sim
