// The process automaton interface.
//
// A step follows the paper's atomic-step model: the process receives one
// message (possibly the empty message, i.e. a lambda step), queries its
// failure detector module, then sends messages and changes state. The
// simulator drives on_start exactly once (the process's first step, which
// receives no message) and on_step for every subsequent step.
#pragma once

#include "sim/envelope.h"
#include "sim/state_encoder.h"

namespace wfd::sim {

class Context;

/// Hook for transport-level instrumentation: metadata attached to every
/// outgoing message and inspected on every incoming one. Used by the
/// Figure 1 extraction to track causal participation in register writes.
class TransportInstrument {
 public:
  virtual ~TransportInstrument() = default;

  /// Metadata to piggyback on a message being sent now (may be nullptr).
  virtual MessageMetaPtr outgoing_meta() = 0;

  /// Called for each received message carrying metadata.
  virtual void incoming_meta(ProcessId from, const MessageMeta& meta) = 0;
};

class Process {
 public:
  virtual ~Process() = default;

  /// The process's first step. Receives no message.
  virtual void on_start(Context& ctx) { (void)ctx; }

  /// One atomic step. msg == nullptr means the empty (lambda) message.
  virtual void on_step(Context& ctx, const Envelope* msg) = 0;

  /// True when the process has nothing left to do; the simulator halts a
  /// run when every alive process is done.
  [[nodiscard]] virtual bool done() const { return false; }

  /// True when a lambda step taken now would be a pure no-op, and would
  /// stay one across the deliveries the explorer may commute it with
  /// (see Module::tick_noop for the exact obligation). Consumed by the
  /// DPOR explorer's content-aware dependence; the conservative default
  /// never commutes lambda steps.
  [[nodiscard]] virtual bool tick_noop() const { return false; }

  /// Transport instrumentation (see TransportInstrument); may be nullptr.
  [[nodiscard]] virtual TransportInstrument* instrument() { return nullptr; }

  /// Fold everything that determines this process's future behaviour
  /// into `enc`. Processes that keep the default are opaque and disable
  /// fingerprint pruning (see StateEncoder::opaque).
  virtual void encode_state(StateEncoder& enc) const {
    enc.opaque("process");
  }
};

}  // namespace wfd::sim
