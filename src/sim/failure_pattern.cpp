#include "sim/failure_pattern.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace wfd::sim {

FailurePattern::FailurePattern(int n) : crash_time_(n, kNever) {
  WFD_CHECK(n >= 1 && n <= kMaxProcesses);
}

void FailurePattern::crash_at(ProcessId p, Time t) {
  WFD_CHECK(p >= 0 && p < n());
  crash_time_[static_cast<std::size_t>(p)] = t;
}

Time FailurePattern::crash_time(ProcessId p) const {
  WFD_CHECK(p >= 0 && p < n());
  return crash_time_[static_cast<std::size_t>(p)];
}

bool FailurePattern::crashed(ProcessId p, Time t) const {
  return crash_time(p) <= t;
}

ProcessSet FailurePattern::crashed_by(Time t) const {
  ProcessSet s;
  for (ProcessId p = 0; p < n(); ++p) {
    if (crashed(p, t)) s.insert(p);
  }
  return s;
}

ProcessSet FailurePattern::faulty() const {
  ProcessSet s;
  for (ProcessId p = 0; p < n(); ++p) {
    if (crash_time(p) != kNever) s.insert(p);
  }
  return s;
}

ProcessSet FailurePattern::correct() const {
  return ProcessSet::full(n()).set_difference(faulty());
}

Time FailurePattern::first_crash_time() const {
  return *std::min_element(crash_time_.begin(), crash_time_.end());
}

std::string FailurePattern::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const FailurePattern& f) {
  os << "F[n=" << f.n();
  for (ProcessId p = 0; p < f.n(); ++p) {
    if (f.crash_time(p) != kNever) {
      os << ' ' << p << "@t" << f.crash_time(p);
    }
  }
  return os << ']';
}

}  // namespace wfd::sim
