#include "sim/simulator.h"

#include "common/check.h"

namespace wfd::sim {

Simulator::Simulator(SimConfig cfg, FailurePattern pattern,
                     std::unique_ptr<fd::Oracle> oracle,
                     std::unique_ptr<Scheduler> scheduler)
    : cfg_(cfg),
      pattern_(std::move(pattern)),
      oracle_(std::move(oracle)),
      scheduler_(std::move(scheduler)) {
  WFD_CHECK(cfg_.n >= 1 && cfg_.n <= kMaxProcesses);
  WFD_CHECK(pattern_.n() == cfg_.n);
  WFD_CHECK(oracle_ != nullptr);
  WFD_CHECK(scheduler_ != nullptr);
  trace_.set_record_samples(cfg_.record_fd_samples);
}

Process& Simulator::process(ProcessId p) {
  WFD_CHECK(p >= 0 && p < static_cast<ProcessId>(procs_.size()));
  return *procs_[static_cast<std::size_t>(p)];
}

bool Simulator::all_alive_done() const {
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (pattern_.alive(p, now_) &&
        !procs_[static_cast<std::size_t>(p)]->done()) {
      return false;
    }
  }
  return true;
}

void Simulator::ensure_started() {
  if (started_) return;
  WFD_CHECK_MSG(static_cast<int>(procs_.size()) == cfg_.n,
                "add_process must be called exactly n times before run");
  scheduler_->begin_run(cfg_.n, pattern_, cfg_.seed);
  if (faults_ != nullptr) faults_->begin_run(cfg_.n);
  oracle_->begin_run(pattern_, cfg_.seed ^ 0xd1b54a32d192ed03ULL,
                     cfg_.max_steps);
  Rng root(cfg_.seed ^ 0xabcdef1234567890ULL);
  proc_rng_.clear();
  proc_rng_.reserve(static_cast<std::size_t>(cfg_.n));
  for (int i = 0; i < cfg_.n; ++i) proc_rng_.push_back(root.split());
  started_ = true;
}

bool Simulator::step() {
  ensure_started();
  if (now_ >= cfg_.max_steps) return false;
  if (halt_on_done_ && all_alive_done()) return false;

  const StepChoice choice = scheduler_->next(net_, pattern_, now_);
  if (choice.p == kNoProcess) return false;  // Everyone crashed.
  WFD_CHECK(pattern_.alive(choice.p, now_));

  if (choice.action != StepChoice::Action::kDeliver) {
    // Adversary move: no process code runs, no FD query happens.
    WFD_CHECK(faults_ != nullptr);
    last_step_ = LastStep{};
    last_step_.p = choice.p;
    last_step_.action = choice.action;
    switch (choice.action) {
      case StepChoice::Action::kCrash:
        pattern_.crash_at(choice.p, now_);
        oracle_->on_crash(choice.p, now_);
        faults_->note_crash();
        break;
      case StepChoice::Action::kDrop: {
        Envelope env = net_.take(choice.message_id);
        WFD_CHECK(env.to == choice.p);
        last_step_.fault_msg = choice.message_id;
        last_step_.from = env.from;
        faults_->note_drop(env.from, env.to);
        break;
      }
      case StepChoice::Action::kDup: {
        Envelope copy = net_.get(choice.message_id);
        WFD_CHECK(copy.to == choice.p);
        last_step_.fault_msg = choice.message_id;
        last_step_.from = copy.from;
        faults_->note_dup(copy.from, copy.to);
        last_step_.dup_id = net_.send(std::move(copy));
        trace_.count_send();
        break;
      }
      case StepChoice::Action::kDeliver:
        break;  // Unreachable.
    }
    trace_.count_step(false);
    ++now_;
    return true;
  }

  const fd::FdValue v = oracle_->query(choice.p, now_);
  trace_.record_sample(choice.p, now_, v);
  Context ctx(*this, choice.p, v);
  Process& proc = *procs_[static_cast<std::size_t>(choice.p)];
  last_step_ = LastStep{choice.p, 0, false};

  bool lambda = true;
  if (!started_p_[static_cast<std::size_t>(choice.p)]) {
    started_p_[static_cast<std::size_t>(choice.p)] = true;
    last_step_.was_start = true;
    proc.on_start(ctx);
  } else if (choice.message_id != 0 && net_.contains(choice.message_id)) {
    Envelope env = net_.take(choice.message_id);
    WFD_CHECK(env.to == choice.p);
    trace_.count_delivery();
    last_step_.delivered = choice.message_id;
    last_step_.from = env.from;
    if (env.meta != nullptr && proc.instrument() != nullptr) {
      proc.instrument()->incoming_meta(env.from, *env.meta);
    }
    proc.on_step(ctx, &env);
    lambda = false;
  } else {
    // Evaluated before the step runs; for a declared no-op the pre- and
    // post-states agree, so either read is the step's verdict.
    last_step_.tick_noop = proc.tick_noop();
    proc.on_step(ctx, nullptr);
  }
  trace_.count_step(lambda);
  ++now_;
  return true;
}

bool Simulator::process_tick_noop(ProcessId p) const {
  return p >= 0 && p < static_cast<ProcessId>(procs_.size()) &&
         started_p_[static_cast<std::size_t>(p)] &&
         procs_[static_cast<std::size_t>(p)]->tick_noop();
}

void Simulator::encode_state(StateEncoder& enc) const {
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    enc.push_proc("proc", p);
    enc.field("started", static_cast<bool>(
                             started_p_[static_cast<std::size_t>(p)]));
    enc.field("crashed", !pattern_.alive(p, now_));
    // A crash still ahead of us changes the reachable futures; fold how
    // far away it is (a delta — absolute times would defeat pruning).
    const Time crash = pattern_.crash_time(p);
    if (crash != kNever && crash > now_) {
      enc.field("crash-in", crash - now_);
    }
    procs_[static_cast<std::size_t>(p)]->encode_state(enc);
    enc.pop();
  }
  net_.for_each_pending([&enc](const Envelope& env) {
    StateEncoder sub = enc.child();
    sub.pid_field("from", env.from);
    sub.pid_field("to", env.to);
    if (env.payload != nullptr) {
      env.payload->encode_state(sub);
    }
    enc.merge("in-flight", sub);
  });
  enc.push("oracle");
  oracle_->encode_state(enc, now_);
  enc.pop();
  if (faults_ != nullptr && faults_->plan().any()) {
    enc.push("faults");
    faults_->encode_state(enc);
    enc.pop();
  }
}

std::optional<std::uint64_t> Simulator::state_fingerprint() const {
  StateEncoder enc;
  encode_state(enc);
  if (!enc.complete()) return std::nullopt;
  return enc.digest();
}

RunResult Simulator::run() { return run_for(cfg_.max_steps); }

RunResult Simulator::run_for(Time steps) {
  RunResult r;
  for (Time i = 0; i < steps; ++i) {
    if (!step()) break;
    ++r.steps;
  }
  r.all_done = all_alive_done();
  return r;
}

void Context::send(ProcessId to, PayloadPtr payload) {
  WFD_CHECK(to >= 0 && to < sim_->n());
  Envelope env;
  env.from = self_;
  env.to = to;
  env.sent_at = sim_->now_;
  env.payload = std::move(payload);
  Process& proc = *sim_->procs_[static_cast<std::size_t>(self_)];
  if (TransportInstrument* ins = proc.instrument()) {
    env.meta = ins->outgoing_meta();
  }
  sim_->net_.send(std::move(env));
  sim_->trace_.count_send();
}

void Context::broadcast(PayloadPtr payload, bool include_self) {
  for (ProcessId q = 0; q < sim_->n(); ++q) {
    if (!include_self && q == self_) continue;
    send(q, payload);
  }
}

void Context::emit(const std::string& kind, std::int64_t value) {
  sim_->trace_.record_event(self_, sim_->now(), kind, value);
}

Rng& Context::rng() {
  return sim_->proc_rng_[static_cast<std::size_t>(self_)];
}

}  // namespace wfd::sim
