#include "sim/environment.h"

#include <algorithm>

#include "common/check.h"

namespace wfd::sim {

MaxCrashesEnvironment::MaxCrashesEnvironment(int n, int max_crashes)
    : Environment(n), max_crashes_(max_crashes) {
  WFD_CHECK(max_crashes >= 0 && max_crashes < n);
}

bool MaxCrashesEnvironment::allows(const FailurePattern& f) const {
  return f.n() == n() && f.faulty().size() <= max_crashes_;
}

FailurePattern MaxCrashesEnvironment::sample(Rng& rng, Time horizon) const {
  FailurePattern f(n());
  if (max_crashes_ == 0 || horizon == 0) return f;
  const int crashes = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(max_crashes_) + 1));
  // Choose `crashes` distinct victims.
  std::vector<ProcessId> ids(static_cast<std::size_t>(n()));
  for (int i = 0; i < n(); ++i) ids[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < crashes; ++i) {
    const auto j = i + static_cast<int>(rng.below(
        static_cast<std::uint64_t>(n() - i)));
    std::swap(ids[static_cast<std::size_t>(i)],
              ids[static_cast<std::size_t>(j)]);
  }
  for (int i = 0; i < crashes; ++i) {
    f.crash_at(ids[static_cast<std::size_t>(i)], rng.below(horizon));
  }
  return f;
}

std::string MaxCrashesEnvironment::name() const {
  return "max-crashes-" + std::to_string(max_crashes_);
}

InitialCrashesEnvironment::InitialCrashesEnvironment(int n, int max_crashes)
    : Environment(n), max_crashes_(max_crashes) {
  WFD_CHECK(max_crashes >= 0 && max_crashes < n);
}

bool InitialCrashesEnvironment::allows(const FailurePattern& f) const {
  if (f.n() != n() || f.faulty().size() > max_crashes_) return false;
  for (ProcessId p : f.faulty().members()) {
    if (f.crash_time(p) != 0) return false;
  }
  return true;
}

FailurePattern InitialCrashesEnvironment::sample(Rng& rng,
                                                 Time horizon) const {
  (void)horizon;
  FailurePattern f(n());
  if (max_crashes_ == 0) return f;
  const int crashes =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(max_crashes_) + 1));
  std::vector<ProcessId> ids(static_cast<std::size_t>(n()));
  for (int i = 0; i < n(); ++i) ids[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < crashes; ++i) {
    const auto j =
        i + static_cast<int>(rng.below(static_cast<std::uint64_t>(n() - i)));
    std::swap(ids[static_cast<std::size_t>(i)],
              ids[static_cast<std::size_t>(j)]);
    f.crash_at(ids[static_cast<std::size_t>(i)], 0);
  }
  return f;
}

OrderedCrashEnvironment::OrderedCrashEnvironment(int n, ProcessId first,
                                                 ProcessId second,
                                                 int max_crashes)
    : Environment(n), first_(first), second_(second),
      max_crashes_(max_crashes) {
  WFD_CHECK(first >= 0 && first < n && second >= 0 && second < n);
  WFD_CHECK(first != second);
  WFD_CHECK(max_crashes >= 0 && max_crashes < n);
}

bool OrderedCrashEnvironment::allows(const FailurePattern& f) const {
  if (f.n() != n() || f.faulty().size() > max_crashes_) return false;
  // `first` never fails before `second`: if first crashes, second must
  // have crashed no later.
  if (f.crash_time(first_) != kNever &&
      f.crash_time(second_) > f.crash_time(first_)) {
    return false;
  }
  return true;
}

FailurePattern OrderedCrashEnvironment::sample(Rng& rng, Time horizon) const {
  MaxCrashesEnvironment base(n(), max_crashes_);
  for (int attempt = 0; attempt < 256; ++attempt) {
    FailurePattern f = base.sample(rng, horizon);
    if (allows(f)) return f;
    // Repair: if only the order is wrong, crash `second` alongside.
    if (f.faulty().size() < max_crashes_ ||
        f.crash_time(second_) != kNever) {
      if (f.crash_time(first_) != kNever) {
        f.crash_at(second_,
                   std::min(f.crash_time(second_), f.crash_time(first_)));
      }
      if (allows(f)) return f;
    }
  }
  return FailurePattern(n());  // Crash-free is always a member.
}

FixedPatternEnvironment::FixedPatternEnvironment(FailurePattern f)
    : Environment(f.n()), pattern_(std::move(f)) {}

bool FixedPatternEnvironment::allows(const FailurePattern& f) const {
  return f == pattern_;
}

FailurePattern FixedPatternEnvironment::sample(Rng& rng, Time horizon) const {
  (void)rng;
  (void)horizon;
  return pattern_;
}

}  // namespace wfd::sim
