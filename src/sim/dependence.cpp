#include "sim/dependence.h"

namespace wfd::sim {

bool payloads_commute(const Payload& a, const Payload& b,
                      std::set<std::string>* conservative) {
  const bool a_classified = !a.kind().empty();
  const bool b_classified = !b.kind().empty();
  if (conservative != nullptr) {
    if (!a_classified) conservative->insert(a.identity());
    if (!b_classified) conservative->insert(b.identity());
  }
  if (!a_classified || !b_classified) return false;
  return a.commutes_with(b) && b.commutes_with(a);
}

}  // namespace wfd::sim
