#include "sim/dependence.h"

#include "sim/scheduler.h"

namespace wfd::sim {

bool payloads_commute(const Payload& a, const Payload& b,
                      std::set<std::string>* conservative) {
  const bool a_classified = !a.kind().empty();
  const bool b_classified = !b.kind().empty();
  if (conservative != nullptr) {
    if (!a_classified) conservative->insert(a.identity());
    if (!b_classified) conservative->insert(b.identity());
  }
  if (!a_classified || !b_classified) return false;
  return a.commutes_with(b) && b.commutes_with(a);
}

ProcessId label_affected_process(std::uint64_t label) {
  // The label encodes the affected process directly for every action:
  // the stepping process for deliver/lambda/start, the crash target for
  // kCrash, the delivery target for kDrop/kDup (scheduler.h builds those
  // labels from the pending delivery's target).
  return ReplayScheduler::label_process(label);
}

bool fault_step_dependent(std::uint64_t fault, ProcessId step_process,
                          bool pattern_sensitive) {
  const StepChoice::Action action = ReplayScheduler::label_action(fault);
  if (action == StepChoice::Action::kCrash && pattern_sensitive) {
    // The detector re-reads the evolving pattern: every process can
    // observe the crash through its next query.
    return true;
  }
  return label_affected_process(fault) == step_process;
}

bool fault_labels_dependent(std::uint64_t a, std::uint64_t b,
                            bool pattern_sensitive) {
  const bool a_fault = ReplayScheduler::label_is_fault(a);
  const bool b_fault = ReplayScheduler::label_is_fault(b);
  if (a_fault && b_fault) {
    // Crash/drop/dup budgets are global: any fault can disable any
    // other fault label.
    return true;
  }
  if (a_fault) {
    return fault_step_dependent(a, label_affected_process(b),
                                pattern_sensitive);
  }
  if (b_fault) {
    return fault_step_dependent(b, label_affected_process(a),
                                pattern_sensitive);
  }
  return label_affected_process(a) == label_affected_process(b);
}

}  // namespace wfd::sim
