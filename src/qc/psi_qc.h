// Solving QC with Psi (Figure 2, Theorem 5).
//
// Each process busy-waits until its Psi module outputs something other
// than bottom. If Psi turned into FS — which Psi may do only if a
// failure occurred — the process returns Q; Q is then valid, and
// agreement holds because all processes see the same branch. If Psi
// turned into (Omega, Sigma), the process feeds its proposal into the
// (Omega, Sigma)-based consensus algorithm of Corollary 2 and returns
// its decision.
#pragma once

#include "common/check.h"
#include "consensus/consensus_api.h"
#include "consensus/omega_sigma_consensus.h"
#include "qc/qc_api.h"
#include "sim/module.h"

namespace wfd::qc {

template <typename V>
class PsiQcModule : public sim::Module, public QcApi<V> {
 public:
  using typename QcApi<V>::DecideCb;
  using InnerConsensus = consensus::OmegaSigmaConsensusModule<V>;

  void propose(const V& value, DecideCb cb) override {
    WFD_CHECK_MSG(!proposed_, "propose called twice");
    proposed_ = true;
    proposal_ = value;
    cb_ = std::move(cb);
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] const QcResult<V>& result() const override {
    WFD_CHECK(decided_);
    return result_;
  }
  [[nodiscard]] bool done() const override { return !proposed_ || decided_; }

  /// Before a proposal or after dispatch the tick returns without the
  /// detector read; none of the three latches is written by a message
  /// handler (propose() runs in a tick, finish() in the inner consensus
  /// callback, whose messages are not tick-insensitive).
  [[nodiscard]] bool tick_noop() const override {
    return !proposed_ || decided_ || dispatched_;
  }

  void on_message(ProcessId, const sim::Payload&) override {}

  void on_tick() override {
    if (!proposed_ || decided_ || dispatched_) return;
    const auto v = detector();
    if (!v.psi.has_value()) return;
    switch (v.psi->mode) {
      case fd::PsiValue::Mode::kBottom:
        return;  // Line 1: while Psi_p = bottom do nop.
      case fd::PsiValue::Mode::kFs:
        // Lines 2-4: Psi behaves like FS; a failure occurred — quit.
        dispatched_ = true;
        finish(QcResult<V>::quit_result());
        return;
      case fd::PsiValue::Mode::kOmegaSigma: {
        // Lines 5-7: Psi behaves like (Omega, Sigma); run consensus.
        dispatched_ = true;
        auto& cons =
            host().template add_module<InnerConsensus>(name() + "/cons");
        cons.propose(proposal_, [this](const V& d) {
          finish(QcResult<V>::value_result(d));
        });
        return;
      }
    }
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("proposed", proposed_);
    enc.field("dispatched", dispatched_);
    sim::encode_field(enc, "proposal", proposal_);
    enc.field("decided", decided_);
    enc.field("quit", result_.quit);
    sim::encode_field(enc, "result", result_.value);
  }

 private:
  void finish(QcResult<V> r) {
    if (decided_) return;
    decided_ = true;
    result_ = std::move(r);
    // -1 encodes Q; a value decision records the value itself (QC values
    // in the library's scenarios are non-negative).
    emit("qc-decide",
         result_.quit ? -1 : consensus::decide_event_value(result_.value));
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(result_);
    }
  }

  bool proposed_ = false;
  bool dispatched_ = false;
  V proposal_{};
  DecideCb cb_;
  bool decided_ = false;
  QcResult<V> result_;
};

}  // namespace wfd::qc
