// Any consensus algorithm is trivially a QC algorithm that never
// exercises the option to quit (Q is an option, never an obligation).
// This adapter exposes the library's (Omega, Sigma) consensus through
// the QC interface; it is the "A = consensus, D = (Omega, Sigma)" case
// of the Figure 3 extraction tests and benches.
#pragma once

#include "consensus/omega_sigma_consensus.h"
#include "qc/qc_api.h"
#include "sim/module.h"

namespace wfd::qc {

template <typename V>
class ConsensusAsQcModule : public sim::Module, public QcApi<V> {
 public:
  using typename QcApi<V>::DecideCb;

  void propose(const V& value, DecideCb cb) override {
    cb_ = std::move(cb);
    ensure_inner();
    inner_->propose(value, [this](const V& d) {
      decided_ = true;
      result_ = QcResult<V>::value_result(d);
      if (cb_) {
        auto cb = std::move(cb_);
        cb_ = nullptr;
        cb(result_);
      }
    });
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] const QcResult<V>& result() const override {
    WFD_CHECK(decided_);
    return result_;
  }
  [[nodiscard]] bool done() const override {
    return inner_ == nullptr || decided_;
  }

  void on_start() override { ensure_inner(); }
  void on_message(ProcessId, const sim::Payload&) override {}

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("has-inner", inner_ != nullptr);
    enc.field("decided", decided_);
    enc.field("quit", result_.quit);
    sim::encode_field(enc, "result", result_.value);
  }

 private:
  void ensure_inner() {
    if (inner_ == nullptr) {
      inner_ = &host().template add_module<
          consensus::OmegaSigmaConsensusModule<V>>(name() + "/cons");
    }
  }

  consensus::OmegaSigmaConsensusModule<V>* inner_ = nullptr;
  DecideCb cb_;
  bool decided_ = false;
  QcResult<V> result_;
};

}  // namespace wfd::qc
