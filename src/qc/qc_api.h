// Quittable consensus (Section 5): like consensus, except that when a
// failure has occurred the processes may instead agree on the special
// value Q ("quit"). Validity: a 0/1 (or, in the multivalued version, any
// proposed value) decision must have been proposed; Q may be returned
// only if a failure previously occurred — quitting is never inevitable,
// only an option.
#pragma once

#include <functional>

#include "common/check.h"

namespace wfd::qc {

/// Outcome of a QC instance: either a regular decision carrying a value,
/// or Q.
template <typename V>
struct QcResult {
  bool quit = false;
  V value{};  ///< Valid when !quit.

  static QcResult quit_result() {
    QcResult r;
    r.quit = true;
    return r;
  }
  static QcResult value_result(V v) {
    QcResult r;
    r.value = std::move(v);
    return r;
  }
  friend bool operator==(const QcResult&, const QcResult&) = default;
};

template <typename V>
class QcApi {
 public:
  using DecideCb = std::function<void(const QcResult<V>&)>;

  virtual ~QcApi() = default;

  /// Propose a value; may be called outside a step — the protocol starts
  /// at the host's next step.
  virtual void propose(const V& value, DecideCb cb) = 0;

  [[nodiscard]] virtual bool decided() const = 0;

  /// Valid only when decided().
  [[nodiscard]] virtual const QcResult<V>& result() const = 0;
};

}  // namespace wfd::qc
