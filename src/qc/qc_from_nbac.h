// QC from NBAC (Figure 5, Theorem 8b).
//
// Each process broadcasts its proposal, then votes Yes in the given NBAC
// instance. If NBAC aborts, the process returns Q — legal, because with
// all-Yes votes NBAC's validity lets Abort happen only after a real
// failure. If NBAC commits, every process voted, hence broadcast its
// proposal first; reliable links deliver all n proposals, and every
// process returns the smallest one — agreement without any further
// communication.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "common/check.h"
#include "consensus/consensus_api.h"
#include "nbac/nbac_api.h"
#include "qc/qc_api.h"
#include "sim/module.h"

namespace wfd::qc {

template <typename V>
class QcFromNbacModule : public sim::Module, public QcApi<V> {
 public:
  using typename QcApi<V>::DecideCb;

  /// `inner` is any NBAC solution hosted in the same process.
  explicit QcFromNbacModule(nbac::NbacApi* inner) : inner_(inner) {
    WFD_CHECK(inner_ != nullptr);
  }

  void propose(const V& value, DecideCb cb) override {
    WFD_CHECK_MSG(!proposed_, "propose called twice");
    proposed_ = true;
    proposal_ = value;
    cb_ = std::move(cb);
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] const QcResult<V>& result() const override {
    WFD_CHECK(decided_);
    return result_;
  }
  [[nodiscard]] bool done() const override { return !proposed_ || decided_; }

  void on_message(ProcessId from, const sim::Payload& msg) override {
    if (const auto* m = sim::payload_cast<ProposalMsg>(msg)) {
      // Proposals may arrive before this process announced its own.
      ensure_proposals();
      auto& slot = proposals_[static_cast<std::size_t>(from)];
      if (!slot.has_value()) {
        slot = m->value;
        ++received_;
      }
      try_finish_commit();
    }
  }

  void on_tick() override {
    if (!proposed_ || decided_) return;
    if (!announced_) {
      // Line 1: send v to all.
      announced_ = true;
      ensure_proposals();
      if (!proposals_[static_cast<std::size_t>(self())].has_value()) {
        proposals_[static_cast<std::size_t>(self())] = proposal_;
        ++received_;
      }
      broadcast(sim::make_payload<ProposalMsg>(proposal_),
                /*include_self=*/false);
      // Line 2: d := VOTE(Yes).
      inner_->vote(nbac::Vote::kYes, [this](nbac::Decision d) {
        nbac_decision_ = d;
        if (d == nbac::Decision::kAbort) {
          // Lines 3-4.
          finish(QcResult<V>::quit_result());
        } else {
          // Lines 5-7: wait for all proposals, return the smallest.
          try_finish_commit();
        }
      });
    }
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("proposed", proposed_);
    enc.field("announced", announced_);
    sim::encode_field(enc, "proposal", proposal_);
    sim::encode_field(enc, "proposals", proposals_);
    enc.field("received", received_);
    sim::encode_field(enc, "nbac-decision", nbac_decision_);
    enc.field("decided", decided_);
    enc.field("quit", result_.quit);
    sim::encode_field(enc, "result", result_.value);
  }

 private:
  // Proposals commute with each other: the handler is a sender-keyed
  // write-once slot update, each process broadcasts at most one proposal
  // (the announced_ latch), and try_finish_commit's all-n gate can only
  // trip after the last proposal of any pending pair — at which point
  // proposals_ is order-independent.
  struct ProposalMsg final : sim::Payload {
    explicit ProposalMsg(V v) : value(std::move(v)) {}
    V value;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "proposal");
      sim::encode_field(enc, "value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "qc.proposal";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      return sim::payload_cast<ProposalMsg>(other) != nullptr;
    }
  };

  void ensure_proposals() {
    if (proposals_.empty()) {
      proposals_.assign(static_cast<std::size_t>(n()), std::nullopt);
    }
  }

  void try_finish_commit() {
    if (decided_ || nbac_decision_ != nbac::Decision::kCommit) return;
    if (received_ < n()) return;
    V smallest = *proposals_[0];
    for (int q = 1; q < n(); ++q) {
      smallest = std::min(smallest, *proposals_[static_cast<std::size_t>(q)]);
    }
    finish(QcResult<V>::value_result(smallest));
  }

  void finish(QcResult<V> r) {
    if (decided_) return;
    decided_ = true;
    result_ = std::move(r);
    emit("qc-decide",
         result_.quit ? -1 : consensus::decide_event_value(result_.value));
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(result_);
    }
  }

  nbac::NbacApi* inner_;
  bool proposed_ = false;
  bool announced_ = false;
  V proposal_{};
  DecideCb cb_;
  std::vector<std::optional<V>> proposals_;
  int received_ = 0;
  std::optional<nbac::Decision> nbac_decision_;
  bool decided_ = false;
  QcResult<V> result_;
};

}  // namespace wfd::qc
