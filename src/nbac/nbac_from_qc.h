// NBAC from QC and FS (Figure 4, Theorem 8a).
//
// Each process broadcasts its vote and waits until it has either
// received every process's vote or its FS module turned red. It then
// proposes 1 to quittable consensus iff it saw n Yes votes (0 on a No
// vote or a failure signal), and commits iff QC decides 1 — a decision
// of 0 or Q yields Abort.
//
// Validity: Commit requires QC to decide 1; by QC validity some process
// proposed 1, so it received Yes votes from everyone. Abort requires a
// 0 (some No vote or a red signal, and red implies a real failure) or a
// Q (QC allows Q only after a failure). Termination: if a process never
// receives all votes, some process crashed, so FS eventually turns red
// at every correct process.
#pragma once

#include <vector>

#include "common/check.h"
#include "nbac/nbac_api.h"
#include "qc/qc_api.h"
#include "sim/module.h"

namespace wfd::nbac {

class NbacFromQcModule : public sim::Module, public NbacApi {
 public:
  /// `inner` is any QC solution (typically a PsiQcModule hosted in the
  /// same process); the FS component is read from this module's
  /// detector source.
  explicit NbacFromQcModule(qc::QcApi<int>* inner) : inner_(inner) {
    WFD_CHECK(inner_ != nullptr);
  }

  void vote(Vote v, DecideCb cb) override {
    WFD_CHECK_MSG(!voted_, "vote called twice");
    voted_ = true;
    my_vote_ = v;
    cb_ = std::move(cb);
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] Decision decision() const override {
    WFD_CHECK(decided_);
    return decision_;
  }
  [[nodiscard]] bool done() const override { return !voted_ || decided_; }

  void on_message(ProcessId from, const sim::Payload& msg) override {
    if (const auto* m = sim::payload_cast<VoteMsg>(msg)) {
      // Votes may arrive before this process's own vote/announcement.
      ensure_votes();
      if (!votes_[static_cast<std::size_t>(from)].has_value()) {
        votes_[static_cast<std::size_t>(from)] = m->vote;
        ++votes_received_;
      }
    }
  }

  /// Mirrors the tick's own early-out: none of the three latches is
  /// written by the (tick-insensitive) vote handler, and while any
  /// holds, the tick returns before reading votes or the detector.
  [[nodiscard]] bool tick_noop() const override {
    return !voted_ || decided_ || proposed_;
  }

  void on_tick() override {
    if (!voted_ || decided_ || proposed_) return;
    if (!announced_) {
      // Line 1: send v to all.
      announced_ = true;
      ensure_votes();
      if (!votes_[static_cast<std::size_t>(self())].has_value()) {
        votes_[static_cast<std::size_t>(self())] = my_vote_;
        ++votes_received_;
      }
      broadcast(sim::make_payload<VoteMsg>(my_vote_), /*include_self=*/false);
      return;
    }
    // Line 2: wait until all votes received or FS = red.
    const bool all_votes = votes_received_ == n();
    const auto v = detector();
    const bool red =
        v.fs.has_value() && *v.fs == fd::FsColor::kRed;
    if (!all_votes && !red) return;
    // Lines 3-6: propose 1 iff everyone voted Yes.
    int proposal = 0;
    if (all_votes) {
      proposal = 1;
      for (const auto& vote : votes_) {
        if (*vote == Vote::kNo) proposal = 0;
      }
    }
    proposed_ = true;
    inner_->propose(proposal, [this](const qc::QcResult<int>& r) {
      // Lines 8-11: Commit iff the decision is 1.
      finish((!r.quit && r.value == 1) ? Decision::kCommit
                                       : Decision::kAbort);
    });
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("voted", voted_);
    enc.field("announced", announced_);
    enc.field("proposed", proposed_);
    enc.field("my-vote", my_vote_);
    for (std::size_t p = 0; p < votes_.size(); ++p) {
      // Slot p is *process p's* vote: scope by the renamable identity.
      enc.push_proc("vote-of", static_cast<ProcessId>(p));
      sim::encode_field(enc, "vote", votes_[p]);
      enc.pop();
    }
    enc.field("votes-received", votes_received_);
    enc.field("decided", decided_);
    enc.field("decision", decision_);
  }

 private:
  // Votes commute with each other: the handler is a sender-keyed
  // write-once slot update, and every process broadcasts at most one
  // vote (the announced_ latch), so the all-n gate on the tick side can
  // only trip after the *last* vote of any pending pair — with the FS-red
  // early exit proposing 0 independently of which partial votes arrived.
  struct VoteMsg final : sim::Payload {
    explicit VoteMsg(Vote v) : vote(v) {}
    Vote vote;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "vote");
      enc.field("vote", vote);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "nbac.vote";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      return sim::payload_cast<VoteMsg>(other) != nullptr;
    }
    /// The slot update reads neither the clock nor the detector (the
    /// FS read sits in on_tick) and emits no trace events.
    [[nodiscard]] bool tick_insensitive() const override { return true; }
  };

  void ensure_votes() {
    if (votes_.empty()) {
      votes_.assign(static_cast<std::size_t>(n()), std::nullopt);
    }
  }

  void finish(Decision d) {
    if (decided_) return;
    decided_ = true;
    decision_ = d;
    emit("nbac-decide", d == Decision::kCommit ? 1 : 0);
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(decision_);
    }
  }

  qc::QcApi<int>* inner_;
  bool voted_ = false;
  bool announced_ = false;
  bool proposed_ = false;
  Vote my_vote_ = Vote::kYes;
  DecideCb cb_;
  std::vector<std::optional<Vote>> votes_;
  int votes_received_ = 0;
  bool decided_ = false;
  Decision decision_ = Decision::kAbort;
};

}  // namespace wfd::nbac
