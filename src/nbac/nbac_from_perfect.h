// NBAC from the perfect failure detector P (related work: Fromentin,
// Raynal & Tronel [9] show P is exactly what pairwise NBAC needs; the
// paper's Corollary 10 shows the weakest detector for plain NBAC is the
// much weaker (Psi, FS)). P is *sufficient* in any environment:
//
//   - broadcast the vote;
//   - wait, for every process q, until q's vote arrived or q is
//     suspected — P's strong accuracy makes a suspicion a proof of
//     death, so "missing vote" really means "crashed";
//   - propose 1 to consensus iff all n votes arrived and all are Yes
//     (P is a Strong detector, so the Chandra-Toueg S-consensus works
//     in any environment); Commit iff consensus decides 1.
//
// Validity: a 0 proposal stems from a No vote or a true crash; a 1
// proposal proves everyone voted Yes.
#pragma once

#include <optional>
#include <vector>

#include "common/check.h"
#include "consensus/strong_consensus.h"
#include "nbac/nbac_api.h"
#include "sim/module.h"

namespace wfd::nbac {

class NbacFromPerfectModule : public sim::Module, public NbacApi {
 public:
  void vote(Vote v, DecideCb cb) override {
    WFD_CHECK_MSG(!voted_, "vote called twice");
    voted_ = true;
    my_vote_ = v;
    cb_ = std::move(cb);
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] Decision decision() const override {
    WFD_CHECK(decided_);
    return decision_;
  }
  [[nodiscard]] bool done() const override { return !voted_ || decided_; }

  void on_message(ProcessId from, const sim::Payload& msg) override {
    if (const auto* m = sim::payload_cast<VoteMsg>(msg)) {
      ensure_votes();
      auto& slot = votes_[static_cast<std::size_t>(from)];
      if (!slot.has_value()) {
        slot = m->vote;
        ++received_;
      }
    }
  }

  void on_tick() override {
    if (!voted_ || decided_ || proposed_) return;
    if (!announced_) {
      announced_ = true;
      ensure_votes();
      if (!votes_[static_cast<std::size_t>(self())].has_value()) {
        votes_[static_cast<std::size_t>(self())] = my_vote_;
        ++received_;
      }
      broadcast(sim::make_payload<VoteMsg>(my_vote_), /*include_self=*/false);
      return;
    }
    const auto v = detector();
    if (!v.suspected.has_value()) return;
    // Wait: every process has voted or provably crashed.
    for (ProcessId q = 0; q < n(); ++q) {
      if (!votes_[static_cast<std::size_t>(q)].has_value() &&
          !v.suspected->contains(q)) {
        return;
      }
    }
    int proposal = 1;
    if (received_ < n()) {
      proposal = 0;  // Someone crashed before voting.
    } else {
      for (const auto& vote : votes_) {
        if (*vote == Vote::kNo) proposal = 0;
      }
    }
    proposed_ = true;
    auto& cons = host().add_module<consensus::StrongConsensusModule<int>>(
        name() + "/cons");
    cons.propose(proposal, [this](const int& d) {
      finish(d == 1 ? Decision::kCommit : Decision::kAbort);
    });
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("voted", voted_);
    enc.field("announced", announced_);
    enc.field("proposed", proposed_);
    enc.field("my-vote", my_vote_);
    sim::encode_field(enc, "votes", votes_);
    enc.field("received", received_);
    enc.field("decided", decided_);
    enc.field("decision", decision_);
  }

 private:
  // Audited non-commuting: the wait is suspicion-gated ("voted or
  // suspected"), so one delivery of a pair can unblock the tick-side
  // transition with a votes_ snapshot that depends on arrival order.
  struct VoteMsg final : sim::Payload {
    explicit VoteMsg(Vote v) : vote(v) {}
    Vote vote;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "vote");
      enc.field("vote", vote);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "nbac.p.vote";
    }
  };

  void ensure_votes() {
    if (votes_.empty()) {
      votes_.assign(static_cast<std::size_t>(n()), std::nullopt);
    }
  }

  void finish(Decision d) {
    if (decided_) return;
    decided_ = true;
    decision_ = d;
    emit("nbac-decide", d == Decision::kCommit ? 1 : 0);
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(decision_);
    }
  }

  bool voted_ = false;
  bool announced_ = false;
  bool proposed_ = false;
  Vote my_vote_ = Vote::kYes;
  DecideCb cb_;
  std::vector<std::optional<Vote>> votes_;
  int received_ = 0;
  bool decided_ = false;
  Decision decision_ = Decision::kAbort;
};

}  // namespace wfd::nbac
