// Non-blocking atomic commit (Section 7): every process votes Yes or No
// and the processes agree on Commit or Abort. Commit requires that all
// processes voted Yes; Abort requires a No vote or a failure.
#pragma once

#include <functional>

namespace wfd::nbac {

enum class Vote { kYes, kNo };
enum class Decision { kCommit, kAbort };

class NbacApi {
 public:
  using DecideCb = std::function<void(Decision)>;

  virtual ~NbacApi() = default;

  /// Cast this process's vote; may be called outside a step — the
  /// protocol starts at the host's next step.
  virtual void vote(Vote v, DecideCb cb) = 0;

  [[nodiscard]] virtual bool decided() const = 0;

  /// Valid only when decided().
  [[nodiscard]] virtual Decision decision() const = 0;
};

}  // namespace wfd::nbac
