// FS from any NBAC solution (Theorem 8b, second half; originally
// Charron-Bost & Toueg [5] and Guerraoui [11]).
//
// Processes run NBAC instances forever, voting Yes in each. While every
// instance commits the output stays green. As soon as an instance
// aborts, the output turns red permanently — and by NBAC validity an
// abort under all-Yes votes implies a failure occurred, which is exactly
// FS's accuracy clause. Completeness: if a process crashes, it stops
// voting, so by NBAC termination+validity the next instance aborts at
// every correct process.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/check.h"
#include "nbac/nbac_api.h"
#include "sim/module.h"

namespace wfd::nbac {

class FsFromNbacModule : public sim::Module, public sim::FdSource {
 public:
  /// Builds a fresh NBAC stack on the host under the given module-name
  /// prefix. Every process must build the same stack under the same
  /// names. The returned reference must stay valid for the run.
  using NbacFactory = std::function<NbacApi&(const std::string& name_prefix)>;

  struct Options {
    /// Own-step pause between instances; 0 = 8 * n.
    Time period = 0;
    /// Stop after this many instances (0 = keep going forever); useful
    /// to bound finite test runs.
    std::uint64_t max_instances = 0;
  };

  explicit FsFromNbacModule(NbacFactory factory)
      : FsFromNbacModule(std::move(factory), Options{}) {}

  FsFromNbacModule(NbacFactory factory, Options opt)
      : opt_(opt), factory_(std::move(factory)) {
    WFD_CHECK(factory_ != nullptr);
  }

  void on_message(ProcessId, const sim::Payload&) override {}

  void on_tick() override {
    if (red_ || in_flight_) return;
    if (opt_.max_instances != 0 && launched_ >= opt_.max_instances) return;
    const Time period =
        opt_.period != 0 ? opt_.period : static_cast<Time>(8 * n());
    if (launched_ > 0 && ++idle_ < period) return;
    idle_ = 0;
    in_flight_ = true;
    const std::uint64_t k = launched_++;
    NbacApi& inst = factory_(name() + "/inst/" + std::to_string(k));
    inst.vote(Vote::kYes, [this](Decision d) {
      in_flight_ = false;
      if (d == Decision::kAbort) red_ = true;
    });
  }

  /// FdSource: the emulated FS output.
  [[nodiscard]] fd::FdValue fd_value() const override {
    fd::FdValue v;
    v.fs = red_ ? fd::FsColor::kRed : fd::FsColor::kGreen;
    return v;
  }

  [[nodiscard]] bool red() const { return red_; }
  [[nodiscard]] std::uint64_t instances_launched() const { return launched_; }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("red", red_);
    enc.field("in-flight", in_flight_);
    enc.field("idle", idle_);
    enc.field("launched", launched_);
  }

 private:
  Options opt_;
  NbacFactory factory_;
  bool red_ = false;
  bool in_flight_ = false;
  Time idle_ = 0;
  std::uint64_t launched_ = 0;
};

}  // namespace wfd::nbac
