// Replicated objects from atomic broadcast — Lamport's state-machine
// approach [17] as generalised by Schneider [21], in the exact role the
// paper's Corollary 3 uses it: "by using consensus we can implement any
// object".
//
// The object is defined by a deterministic transition function
// apply(state-op). Commands are atomic-broadcast; every replica applies
// the common total order, so all replicas traverse the same state
// sequence; the submitting replica resolves its callback with the
// result its own command produced at its ordered position —
// linearizability for free.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "broadcast/atomic_broadcast.h"
#include "common/check.h"
#include "sim/module.h"

namespace wfd::smr {

class ReplicatedObjectModule : public sim::Module {
 public:
  /// Deterministic transition: (command) -> result, mutating captured
  /// state. Every process must install the same function.
  using ApplyFn = std::function<std::int64_t(std::int64_t command)>;
  using ResultCb = std::function<void(std::int64_t result)>;

  explicit ReplicatedObjectModule(ApplyFn apply) : apply_(std::move(apply)) {
    WFD_CHECK(apply_ != nullptr);
  }

  /// Submit a command; cb receives the result of applying it at its
  /// position in the total order. May be called outside a step.
  void submit(std::int64_t command, ResultCb cb) {
    pending_.emplace_back(command, std::move(cb));
  }

  [[nodiscard]] std::uint64_t applied_count() const { return applied_; }
  [[nodiscard]] bool done() const override {
    return pending_.empty() && inflight_.empty();
  }

  void on_start() override { ensure_abcast(); }
  void on_message(ProcessId, const sim::Payload&) override {}

  /// The object's state itself lives behind apply_ but is a deterministic
  /// function of the applied prefix of the abcast total order, which the
  /// abcast module encodes — so folding the counters suffices.
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("has-abcast", ab_ != nullptr);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      enc.push("pending", i);
      enc.field("cmd", pending_[i].first);
      enc.pop();
    }
    for (const auto& entry : inflight_) {
      sim::StateEncoder sub = enc.child();
      sub.field("seq", entry.first);
      enc.merge("inflight", sub);
    }
    enc.field("next-seq", next_seq_);
    enc.field("applied", applied_);
  }

  void on_tick() override {
    auto& ab = ensure_abcast();
    while (!pending_.empty()) {
      auto [cmd, cb] = std::move(pending_.front());
      pending_.erase(pending_.begin());
      // The abcast module stamps (origin=self, seq) on the message; we
      // mirror its sequence numbering to match results to callbacks.
      inflight_.emplace(next_seq_++, std::move(cb));
      ab.abcast(cmd);
    }
  }

 private:
  broadcast::AtomicBroadcastModule& ensure_abcast() {
    if (ab_ == nullptr) {
      ab_ = &host().add_module<broadcast::AtomicBroadcastModule>(
          name() + "/ab");
      ab_->set_deliver([this](const broadcast::AppMessage& m) {
        const std::int64_t result = apply_(m.body);
        ++applied_;
        if (m.origin == self()) {
          auto it = inflight_.find(m.seq);
          if (it != inflight_.end()) {
            auto cb = std::move(it->second);
            inflight_.erase(it);
            if (cb) cb(result);
          }
        }
      });
    }
    return *ab_;
  }

  ApplyFn apply_;
  broadcast::AtomicBroadcastModule* ab_ = nullptr;
  std::vector<std::pair<std::int64_t, ResultCb>> pending_;
  std::map<std::uint64_t, ResultCb> inflight_;
  std::uint64_t next_seq_ = 1;  ///< Mirrors UrbModule's numbering.
  std::uint64_t applied_ = 0;
};

}  // namespace wfd::smr
