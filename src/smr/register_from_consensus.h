// Atomic registers from consensus, via state-machine replication
// (Lamport [17], Schneider [21]) — the substrate behind Corollary 3:
// any detector D that solves consensus can implement registers, hence
// (by Theorem 1) D can be transformed into Sigma.
//
// A replicated log of commands is agreed slot by slot with one consensus
// instance per slot; read and write operations are both commands (reads
// must be ordered in the log for linearizability). Clients broadcast
// commands into every replica's pending pool, each replica proposes the
// oldest pending command for the next slot (announcing the slot so idle
// replicas join as acceptors/proposers), and each replica applies
// decided slots in order; a client's operation completes when its own
// command is applied.
//
// Generic in the stored value type V (copyable + default-constructible +
// equality-comparable), so the Figure 1 extraction can run over
// consensus-backed registers holding quorum lists.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "common/check.h"
#include "consensus/omega_sigma_consensus.h"
#include "sim/module.h"

namespace wfd::smr {

/// A register command; NoOp slots (client == kNoProcess) keep the log
/// moving when a replica has nothing to propose. Identity (and log
/// dedup) is (client, op_id); the value plays no role in ordering.
template <typename V>
struct BasicRegCommand {
  ProcessId client = kNoProcess;
  std::uint64_t op_id = 0;
  bool is_write = false;
  V value{};

  [[nodiscard]] bool is_noop() const { return client == kNoProcess; }
  [[nodiscard]] std::pair<ProcessId, std::uint64_t> key() const {
    return {client, op_id};
  }
  friend bool operator==(const BasicRegCommand& a, const BasicRegCommand& b) {
    return a.key() == b.key();
  }
  friend bool operator<(const BasicRegCommand& a, const BasicRegCommand& b) {
    return a.key() < b.key();
  }

  void encode_state(sim::StateEncoder& enc) const {
    enc.field("client", client);
    enc.field("op-id", op_id);
    enc.field("is-write", is_write);
    sim::encode_field(enc, "value", value);
  }
};

template <typename V>
class BasicSmrRegisterModule : public sim::Module {
 public:
  using RegCommand = BasicRegCommand<V>;
  using WriteCb = std::function<void()>;
  using ReadCb = std::function<void(const V&)>;
  using SlotConsensus = consensus::OmegaSigmaConsensusModule<RegCommand>;

  /// May be called outside a step; the protocol starts at the next tick.
  void write(const V& v, WriteCb cb) {
    WFD_CHECK_MSG(!busy(), "one SMR register operation at a time");
    write_cb_ = std::move(cb);
    RegCommand cmd;
    cmd.client = kPendingSelf;
    cmd.op_id = next_op_id_++;
    cmd.is_write = true;
    cmd.value = v;
    submit(cmd);
  }

  void read(ReadCb cb) {
    WFD_CHECK_MSG(!busy(), "one SMR register operation at a time");
    read_cb_ = std::move(cb);
    RegCommand cmd;
    cmd.client = kPendingSelf;
    cmd.op_id = next_op_id_++;
    cmd.is_write = false;
    submit(cmd);
  }

  [[nodiscard]] bool busy() const { return own_pending_.has_value(); }

  /// Replica state after all applied slots (for tests).
  [[nodiscard]] const V& replica_value() const { return value_; }
  [[nodiscard]] std::uint64_t applied_slots() const { return applied_; }

  void on_message(ProcessId, const sim::Payload& msg) override {
    if (const auto* m = sim::payload_cast<CommandMsg>(msg)) {
      if (applied_cmds_.count(m->cmd.key()) == 0) pool_.insert(m->cmd);
      return;
    }
    if (const auto* m = sim::payload_cast<AnnounceSlot>(msg)) {
      ensure_slot(m->slot);
      return;
    }
  }

  void on_tick() override {
    if (unannounced_ && own_pending_.has_value()) {
      unannounced_ = false;
      // The client id can only be resolved inside a step.
      own_pending_->client = self();
      pool_.erase(RegCommand{*own_pending_});
      pool_.insert(*own_pending_);
      broadcast(sim::make_payload<CommandMsg>(*own_pending_),
                /*include_self=*/false);
    }
    drive_log();
  }

  [[nodiscard]] bool done() const override { return !busy(); }

  void encode_state(sim::StateEncoder& enc) const override {
    sim::encode_field(enc, "value", value_);
    enc.field("applied", applied_);
    enc.field("next-op-id", next_op_id_);
    sim::encode_field(enc, "own-pending", own_pending_);
    enc.field("unannounced", unannounced_);
    sim::encode_field(enc, "pool", pool_);
    for (const auto& key : applied_cmds_) {
      sim::StateEncoder sub = enc.child();
      sub.field("client", key.first);
      sub.field("op-id", key.second);
      enc.merge("applied-cmd", sub);
    }
    for (const auto& [slot, cmd] : decisions_) {
      enc.push("decision", slot);
      sim::encode_field(enc, "cmd", cmd);
      enc.pop();
    }
    sim::encode_field(enc, "joined", joined_);
  }

 private:
  /// Sentinel until self() is known (first tick after submit).
  static constexpr ProcessId kPendingSelf = kMaxProcesses + 1;

  // Equal commands commute (set insert is idempotent, so the second of
  // the pair is a no-op in either order). Distinct commands do not: the
  // tick between the pair may join a fresh slot and propose
  // pick_proposal(), which reads pool_ — a receipt-order-sensitive read.
  struct CommandMsg final : sim::Payload {
    explicit CommandMsg(RegCommand c) : cmd(std::move(c)) {}
    RegCommand cmd;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "command");
      sim::encode_field(enc, "cmd", cmd);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "smr.command";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<CommandMsg>(other);
      return o != nullptr && cmd == o->cmd;
    }
  };
  // Equal-slot announcements commute via the joined_ guard; distinct
  // slots spawn their consensus instance at order-dependent steps (the
  // instance's first tick reads the detector at the spawn step).
  struct AnnounceSlot final : sim::Payload {
    explicit AnnounceSlot(std::uint64_t s) : slot(s) {}
    std::uint64_t slot;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "announce-slot");
      enc.field("slot", slot);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "smr.announce-slot";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<AnnounceSlot>(other);
      return o != nullptr && slot == o->slot;
    }
  };

  void submit(RegCommand cmd) {
    own_pending_ = std::move(cmd);
    unannounced_ = true;
  }

  void drive_log() {
    if (!busy() || unannounced_) return;
    // Join the first slot that is neither applied nor decided here;
    // earlier joined-but-undecided slots finish via their own instances.
    std::uint64_t k = applied_;
    while (decisions_.count(k) != 0) ++k;
    ensure_slot(k);
  }

  [[nodiscard]] RegCommand pick_proposal() const {
    for (const RegCommand& c : pool_) {
      if (applied_cmds_.count(c.key()) == 0) return c;
    }
    return RegCommand{};  // NoOp.
  }

  void ensure_slot(std::uint64_t slot) {
    if (joined_.count(slot) != 0) return;
    joined_.insert(slot);
    auto& inst = host().template add_module<SlotConsensus>(
        name() + "/slot/" + std::to_string(slot));
    broadcast(sim::make_payload<AnnounceSlot>(slot), /*include_self=*/false);
    inst.propose(pick_proposal(), [this, slot](const RegCommand& cmd) {
      on_slot_decided(slot, cmd);
    });
  }

  void on_slot_decided(std::uint64_t slot, const RegCommand& cmd) {
    decisions_.emplace(slot, cmd);
    apply_ready_slots();
    drive_log();  // Keep the log moving while an operation is in flight.
  }

  void apply_ready_slots() {
    for (;;) {
      auto it = decisions_.find(applied_);
      if (it == decisions_.end()) return;
      const RegCommand cmd = it->second;
      decisions_.erase(it);
      ++applied_;
      if (cmd.is_noop() || !applied_cmds_.insert(cmd.key()).second) continue;
      pool_.erase(cmd);
      if (cmd.is_write) value_ = cmd.value;
      if (own_pending_.has_value() && cmd == *own_pending_) {
        own_pending_.reset();
        if (cmd.is_write) {
          auto cb = std::move(write_cb_);
          write_cb_ = nullptr;
          if (cb) cb();
        } else {
          auto cb = std::move(read_cb_);
          read_cb_ = nullptr;
          if (cb) cb(value_);
        }
      }
    }
  }

  V value_{};
  std::uint64_t applied_ = 0;  ///< Slots [0, applied_) are applied.
  std::uint64_t next_op_id_ = 1;

  std::optional<RegCommand> own_pending_;
  bool unannounced_ = false;
  WriteCb write_cb_;
  ReadCb read_cb_;

  std::set<RegCommand> pool_;  ///< Known, not-yet-applied commands.
  std::set<std::pair<ProcessId, std::uint64_t>> applied_cmds_;
  std::map<std::uint64_t, RegCommand> decisions_;
  std::set<std::uint64_t> joined_;  ///< Slots whose module exists here.
};

/// The int64-valued register used by the SMR tests and benches.
using SmrRegisterModule = BasicSmrRegisterModule<std::int64_t>;
using RegCommand = BasicRegCommand<std::int64_t>;

}  // namespace wfd::smr
