#include "smr/register_from_consensus.h"

#include <vector>

#include "common/process_set.h"

namespace wfd::smr {

// Explicit instantiations so template errors surface when the library
// itself is built.
template class BasicSmrRegisterModule<std::int64_t>;
template class BasicSmrRegisterModule<std::vector<ProcessSet>>;

}  // namespace wfd::smr
