// Fault-injection plans: what the adversary may do to a run beyond
// scheduling — crash still-correct processes, drop or duplicate in-flight
// messages — and the per-run ledger that keeps every injected fault
// inside the scenario's environment (e.g. never crashing down to a
// minority in a Σ-based scenario, never exceeding a per-link loss
// budget, so quasi-reliable retransmission terminates).
//
// A FaultPlan is pure configuration; a FaultState is one run's mutable
// accounting. The Simulator owns the FaultState, the ReplayScheduler
// borrows it to decide which fault labels go on the step menu, and the
// explorer reads the counters into its stats after each run. Remaining
// budgets feed the state fingerprint: two states with different budgets
// left have different reachable futures and must never be merged.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/failure_pattern.h"
#include "sim/state_encoder.h"

namespace wfd::inject {

enum class CrashMode {
  kNone,     ///< No crash injection (scripted pattern only, possibly empty).
  kScript,   ///< Crashes happen at pre-scripted (or kEnvironment-chosen) times.
  kExplore,  ///< Crash timing is a per-step schedule choice of the explorer.
};

/// Static description of the faults a scenario allows the adversary.
struct FaultPlan {
  CrashMode crash_mode = CrashMode::kNone;
  /// Max crashes the explorer may inject (kExplore only).
  int crash_budget = 0;
  /// Environment floor: an injected crash may never leave fewer than this
  /// many processes alive (n/2+1 for Σ-majority scenarios, 1 otherwise).
  int min_alive = 1;
  /// Per directed link: how many pending messages may be dropped.
  int drop_budget = 0;
  /// Per directed link: how many pending messages may be duplicated.
  int dup_budget = 0;

  [[nodiscard]] bool any() const {
    return crash_mode == CrashMode::kExplore || drop_budget > 0 ||
           dup_budget > 0;
  }
};

/// One run's fault ledger. begin_run() resets it; the menu queries are
/// pure, the note_* mutations record an executed fault.
class FaultState {
 public:
  explicit FaultState(FaultPlan plan) : plan_(plan) {}

  void begin_run(int n);

  /// May the explorer crash p right now? Requires explore mode, budget
  /// left, p alive, and at least min_alive processes alive afterwards.
  [[nodiscard]] bool may_crash(ProcessId p, const sim::FailurePattern& f,
                               Time now) const;
  [[nodiscard]] bool may_drop(ProcessId from, ProcessId to) const;
  [[nodiscard]] bool may_dup(ProcessId from, ProcessId to) const;

  void note_crash();
  void note_drop(ProcessId from, ProcessId to);
  void note_dup(ProcessId from, ProcessId to);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] int crashes() const { return crashes_; }
  [[nodiscard]] int drops() const { return drops_; }
  [[nodiscard]] int dups() const { return dups_; }

  /// Fold the remaining budgets (what the adversary can still do — the
  /// only part of the ledger that steers future menus).
  void encode_state(sim::StateEncoder& enc) const;

 private:
  [[nodiscard]] std::size_t link(ProcessId from, ProcessId to) const {
    return static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(to);
  }

  FaultPlan plan_;
  int n_ = 0;
  int crashes_ = 0;
  int drops_ = 0;
  int dups_ = 0;
  std::vector<int> link_drops_;  ///< n*n, indexed by link(from, to).
  std::vector<int> link_dups_;
};

}  // namespace wfd::inject
