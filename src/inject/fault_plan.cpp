#include "inject/fault_plan.h"

#include "common/check.h"

namespace wfd::inject {

void FaultState::begin_run(int n) {
  WFD_CHECK(n >= 1 && n <= kMaxProcesses);
  n_ = n;
  crashes_ = 0;
  drops_ = 0;
  dups_ = 0;
  const std::size_t links = static_cast<std::size_t>(n) * n;
  link_drops_.assign(links, 0);
  link_dups_.assign(links, 0);
}

bool FaultState::may_crash(ProcessId p, const sim::FailurePattern& f,
                           Time now) const {
  if (plan_.crash_mode != CrashMode::kExplore) return false;
  if (crashes_ >= plan_.crash_budget) return false;
  if (!f.alive(p, now)) return false;
  int alive = 0;
  for (ProcessId q = 0; q < n_; ++q) {
    if (f.alive(q, now)) ++alive;
  }
  return alive - 1 >= plan_.min_alive;
}

bool FaultState::may_drop(ProcessId from, ProcessId to) const {
  return plan_.drop_budget > 0 && link_drops_[link(from, to)] < plan_.drop_budget;
}

bool FaultState::may_dup(ProcessId from, ProcessId to) const {
  return plan_.dup_budget > 0 && link_dups_[link(from, to)] < plan_.dup_budget;
}

void FaultState::note_crash() { ++crashes_; }

void FaultState::note_drop(ProcessId from, ProcessId to) {
  ++link_drops_[link(from, to)];
  ++drops_;
}

void FaultState::note_dup(ProcessId from, ProcessId to) {
  ++link_dups_[link(from, to)];
  ++dups_;
}

void FaultState::encode_state(sim::StateEncoder& enc) const {
  enc.field("crashes-left",
            plan_.crash_mode == CrashMode::kExplore
                ? plan_.crash_budget - crashes_
                : 0);
  if (plan_.drop_budget > 0 || plan_.dup_budget > 0) {
    for (ProcessId from = 0; from < n_; ++from) {
      for (ProcessId to = 0; to < n_; ++to) {
        const std::size_t l = link(from, to);
        if (link_drops_[l] == 0 && link_dups_[l] == 0) continue;
        // Scope by the (renamed) endpoints, not the linear index, so a
        // symmetry renaming maps link budgets to the renamed link.
        enc.push_proc("link-from", from);
        enc.push_proc("link-to", to);
        enc.field("drops-left", plan_.drop_budget - link_drops_[l]);
        enc.field("dups-left", plan_.dup_budget - link_dups_[l]);
        enc.pop();
        enc.pop();
      }
    }
  }
}

}  // namespace wfd::inject
