// The adversarial failure-detector oracle: ChoiceOracle driven to its
// most hostile configuration. Every query is a fresh choice from the
// full allowed set (Ω leader churn, Σ quorum reshuffling, Ψ's
// bottom-lingering and mandatory-quit flip), and the oracle tracks the
// *evolving* failure pattern, so a crash the explorer injects mid-run
// immediately widens the legal menus (FS may go red, Ψ may take its FS
// branch). Opt-in via `wfd_check --fd=adversarial`.
//
// Legality is inherited from ChoiceOracle: with stabilization == kNever
// every finite prefix extends to a history in D(F) for the final
// reconstructed pattern F — convergence is simply deferred past the
// horizon. This strictly subsumes the static-history collapse
// (--fd=static explores exactly the histories whose prefix happens to be
// constant) and the flap mode over a fixed pattern (--fd=flap with
// scripted crashes): every history either mode can realise is reachable
// here, plus all histories only legal for some injected crash timing.
#pragma once

#include <string>

#include "explore/choice_oracle.h"

namespace wfd::inject {

class FdAdversary : public explore::ChoiceOracle {
 public:
  /// `choices` is borrowed and must outlive the oracle. Whatever `opt`
  /// says, per-query choice and live-pattern tracking are forced on.
  FdAdversary(sim::ChoiceSource* choices, Options opt)
      : explore::ChoiceOracle(choices, force(opt)) {}

  [[nodiscard]] std::string name() const override { return "fd-adversary"; }

 private:
  static Options force(Options o) {
    o.per_query = true;
    o.live_pattern = true;
    return o;
  }
};

}  // namespace wfd::inject
