#include "common/process_set.h"

#include <ostream>
#include <sstream>

namespace wfd {

std::string ProcessSet::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ProcessSet& s) {
  os << '{';
  bool first = true;
  for (ProcessId p : s.members()) {
    if (!first) os << ',';
    os << p;
    first = false;
  }
  return os << '}';
}

}  // namespace wfd
