// Deterministic, splittable random number generator.
//
// Every source of nondeterminism in a run (scheduling, delays, oracle
// history choices) draws from an Rng seeded from the run's seed, so any
// run can be replayed exactly from (algorithm, environment, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace wfd {

/// xoshiro256** with a splitmix64 seeding stage.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    WFD_CHECK(!v.empty());
    return v[below(v.size())];
  }

  /// Derive an independent child generator (for sub-components).
  Rng split();

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace wfd
