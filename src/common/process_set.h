// A set of processes, represented as a 64-bit mask.
//
// Quorum intersection tests (the heart of Sigma) are a single AND; this
// matters because property tests check intersection across every pair of
// outputs ever produced in a run.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace wfd {

/// A subset of the processes 0..n-1 (n <= kMaxProcesses).
class ProcessSet {
 public:
  constexpr ProcessSet() = default;

  ProcessSet(std::initializer_list<ProcessId> ids) {
    for (ProcessId p : ids) insert(p);
  }

  /// The full set {0, .., n-1}.
  static ProcessSet full(int n) {
    WFD_CHECK(n >= 0 && n <= kMaxProcesses);
    ProcessSet s;
    s.bits_ = (n == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
    return s;
  }

  static constexpr ProcessSet empty_set() { return ProcessSet{}; }

  void insert(ProcessId p) {
    WFD_CHECK(p >= 0 && p < kMaxProcesses);
    bits_ |= std::uint64_t{1} << p;
  }

  void erase(ProcessId p) {
    WFD_CHECK(p >= 0 && p < kMaxProcesses);
    bits_ &= ~(std::uint64_t{1} << p);
  }

  [[nodiscard]] bool contains(ProcessId p) const {
    if (p < 0 || p >= kMaxProcesses) return false;
    return (bits_ >> p) & 1;
  }

  [[nodiscard]] bool empty() const { return bits_ == 0; }
  [[nodiscard]] int size() const { return __builtin_popcountll(bits_); }

  [[nodiscard]] bool intersects(const ProcessSet& o) const {
    return (bits_ & o.bits_) != 0;
  }

  [[nodiscard]] bool is_subset_of(const ProcessSet& o) const {
    return (bits_ & ~o.bits_) == 0;
  }

  [[nodiscard]] ProcessSet set_union(const ProcessSet& o) const {
    ProcessSet r;
    r.bits_ = bits_ | o.bits_;
    return r;
  }

  [[nodiscard]] ProcessSet set_intersection(const ProcessSet& o) const {
    ProcessSet r;
    r.bits_ = bits_ & o.bits_;
    return r;
  }

  [[nodiscard]] ProcessSet set_difference(const ProcessSet& o) const {
    ProcessSet r;
    r.bits_ = bits_ & ~o.bits_;
    return r;
  }

  /// Smallest member, or kNoProcess if empty.
  [[nodiscard]] ProcessId min() const {
    if (bits_ == 0) return kNoProcess;
    return __builtin_ctzll(bits_);
  }

  /// Members in increasing order.
  [[nodiscard]] std::vector<ProcessId> members() const {
    std::vector<ProcessId> out;
    out.reserve(static_cast<std::size_t>(size()));
    std::uint64_t b = bits_;
    while (b != 0) {
      out.push_back(__builtin_ctzll(b));
      b &= b - 1;
    }
    return out;
  }

  [[nodiscard]] std::uint64_t raw() const { return bits_; }

  static ProcessSet from_raw(std::uint64_t bits) {
    ProcessSet s;
    s.bits_ = bits;
    return s;
  }

  friend bool operator==(const ProcessSet&, const ProcessSet&) = default;

  /// Render as "{0,2,5}".
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint64_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, const ProcessSet& s);

}  // namespace wfd
