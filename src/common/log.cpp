#include "common/log.h"

#include <cstdio>

namespace wfd {
namespace {
LogLevel g_level = LogLevel::kOff;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {

void log_line(LogLevel level, const std::string& line) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kTrace:
      tag = "T";
      break;
    case LogLevel::kOff:
      return;
  }
  std::fprintf(stderr, "[wfd:%s] %s\n", tag, line.c_str());
}

}  // namespace detail
}  // namespace wfd
