// Assertion helpers. Invariant violations in the harness are programming
// errors, so they abort with a message rather than throwing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wfd::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "WFD_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace wfd::detail

#define WFD_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) ::wfd::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#define WFD_CHECK_MSG(expr, msg)                                 \
  do {                                                           \
    if (!(expr)) ::wfd::detail::check_failed(msg, __FILE__, __LINE__); \
  } while (0)
