// Minimal leveled logger for debugging simulated runs. Off by default;
// tests flip it on when diagnosing a failing schedule.
#pragma once

#include <sstream>
#include <string>

namespace wfd {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Global log threshold; messages above it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

}  // namespace wfd

#define WFD_LOG(level, expr)                                     \
  do {                                                           \
    if (static_cast<int>(level) <=                               \
        static_cast<int>(::wfd::log_level())) {                  \
      std::ostringstream wfd_log_os;                             \
      wfd_log_os << expr;                                        \
      ::wfd::detail::log_line(level, wfd_log_os.str());          \
    }                                                            \
  } while (0)

#define WFD_INFO(expr) WFD_LOG(::wfd::LogLevel::kInfo, expr)
#define WFD_DEBUG(expr) WFD_LOG(::wfd::LogLevel::kDebug, expr)
#define WFD_TRACE(expr) WFD_LOG(::wfd::LogLevel::kTrace, expr)
