// Core scalar types shared across the library.
//
// The model follows the paper exactly: a system of n processes named
// 0..n-1, a discrete global clock (step index) that processes cannot
// observe, and crash failures only.
#pragma once

#include <cstdint>
#include <limits>

namespace wfd {

/// Identifier of a process; processes are named 0..n-1.
using ProcessId = int;

/// Virtual global time: the index of a step in the run. Processes never
/// observe this value; it exists only in the harness (the paper's
/// "discrete global clock used only for presentational convenience").
using Time = std::uint64_t;

/// Sentinel for "never" (e.g. a process that never crashes).
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = -1;

/// Upper bound on system size supported by ProcessSet's fixed bitset.
inline constexpr int kMaxProcesses = 64;

}  // namespace wfd
