#include "common/rng.h"

namespace wfd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (unreachable from splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  WFD_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  WFD_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  WFD_CHECK(den > 0);
  return below(den) < num;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split() { return Rng(next()); }

}  // namespace wfd
