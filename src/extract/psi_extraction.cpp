#include "extract/psi_extraction.h"

#include <algorithm>

namespace wfd::extract {

PsiExtractionModule::PsiExtractionModule(SandboxSpec spec, OuterFactory outer,
                                         std::vector<sim::FdSampleRecord>* sink,
                                         Options opt)
    : spec_(std::move(spec)),
      outer_factory_(std::move(outer)),
      sink_(sink),
      opt_(opt),
      dag_(std::max(1, spec_.n)) {
  WFD_CHECK(spec_.n >= 1);
  WFD_CHECK(spec_.build != nullptr && spec_.decision_of != nullptr);
  WFD_CHECK(outer_factory_ != nullptr);
  WFD_CHECK(opt_.sample_period >= 1 && opt_.gossip_period >= 1 &&
            opt_.analyze_period >= 1 && opt_.config_stride >= 1);
}

void PsiExtractionModule::on_start() {
  WFD_CHECK_MSG(spec_.n == n(), "SandboxSpec.n must match the system size");
  // The real execution of A must exist from the start so this process
  // serves it (as acceptor/participant) even before proposing.
  outer_ = &outer_factory_(host(), name() + "/outer");
}

void PsiExtractionModule::on_message(ProcessId, const sim::Payload& msg) {
  if (const auto* g = sim::payload_cast<GossipMsg>(msg)) {
    dag_.merge(g->nodes);
  }
}

std::vector<ScriptStep> PsiExtractionModule::spine_window() const {
  auto spine = dag_.canonical_spine();
  if (spine.size() > opt_.window) {
    spine.erase(spine.begin(),
                spine.end() - static_cast<std::ptrdiff_t>(opt_.window));
  }
  return to_script(spine);
}

void PsiExtractionModule::on_tick() {
  ++ticks_;
  if (stage_ != Stage::kRed) {
    if (ticks_ % opt_.sample_period == 0) {
      dag_.add_sample(self(), detector());
    }
    if (ticks_ % opt_.gossip_period == 0) {
      broadcast(sim::make_payload<GossipMsg>(dag_.snapshot()),
                /*include_self=*/false);
    }
  }
  switch (stage_) {
    case Stage::kForest:
      if (ticks_ % opt_.analyze_period == 0) forest_round();
      break;
    case Stage::kAgreeing:
    case Stage::kRed:
      break;  // Waiting for the real execution of A / terminal.
    case Stage::kOmegaSigma:
      if (ticks_ % opt_.analyze_period == 0) {
        omega_round(spine_window());
        sigma_round();
      }
      break;
  }
  record_sample_point();
}

void PsiExtractionModule::forest_round() {
  const auto window = spine_window();
  if (window.empty()) return;
  const auto analysis = analyze_forest(spec_, window, self());
  if (!analysis.all_decided) return;  // Line 8: keep waiting.

  ExtractProposal prop;
  if (analysis.any_quit) {
    // Lines 9-11: a Q decision proves a failure; propose red evidence
    // (the paper's proposal of 0).
    prop.red_evidence = true;
  } else {
    // Lines 12-14: propose the adjacent decision-flip witness.
    WFD_CHECK(analysis.critical_index >= 1);
    prop.tree0 = analysis.critical_index - 1;
    prop.tree1 = analysis.critical_index;
    prop.s0 = analysis.trees[static_cast<std::size_t>(prop.tree0)]
                  .deciding_prefix;
    prop.s1 = analysis.trees[static_cast<std::size_t>(prop.tree1)]
                  .deciding_prefix;
  }
  stage_ = Stage::kAgreeing;
  outer_->propose(prop, [this](const qc::QcResult<ExtractProposal>& r) {
    on_outer_decided(r);
  });
}

void PsiExtractionModule::on_outer_decided(
    const qc::QcResult<ExtractProposal>& r) {
  if (r.quit || r.value.red_evidence) {
    // Lines 16-18: behave like FS, permanently red. Legal because a Q
    // (or red-evidence, which stems from a simulated Q) implies, via
    // A's validity, that a failure really occurred.
    stage_ = Stage::kRed;
    emit("psix-red", 0);
    return;
  }
  // Lines 19-20: switch to (Omega, Sigma) behaviour.
  stage_ = Stage::kOmegaSigma;
  omega_output_ = self();
  sigma_output_ = ProcessSet::full(n());
  setup_sigma_configs(r.value);
  fresh_seq_ = dag_.known(self());  // Line 27: wait for a fresh sample.
  emit("psix-omegasigma", 0);
}

void PsiExtractionModule::setup_sigma_configs(const ExtractProposal& tuple) {
  // Line 25: C = all configurations reached by applying prefixes of
  // S0/S1 to I0/I1 (config_stride == 1 gives every prefix).
  sigma_configs_.clear();
  auto add_prefixes = [&](int tree, const std::vector<ScriptStep>& s) {
    for (std::size_t len = 0; len <= s.size(); len += opt_.config_stride) {
      SigmaConfig c;
      c.tree = tree;
      c.base.assign(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(len));
      sigma_configs_.push_back(std::move(c));
    }
    // Always include the full prefix even when striding.
    if ((s.size() % opt_.config_stride) != 0) {
      SigmaConfig c;
      c.tree = tree;
      c.base = s;
      sigma_configs_.push_back(std::move(c));
    }
  };
  add_prefixes(tuple.tree0, tuple.s0);
  add_prefixes(tuple.tree1, tuple.s1);
}

void PsiExtractionModule::omega_round(const std::vector<ScriptStep>& window) {
  if (window.empty()) return;
  const auto analysis = analyze_forest(spec_, window, self());
  if (analysis.all_decided && !analysis.any_quit &&
      analysis.leader != kNoProcess) {
    omega_output_ = analysis.leader;
  }
}

void PsiExtractionModule::sigma_round() {
  // Line 27: only proceed once a sample strictly fresher than the last
  // round's marker exists.
  if (dag_.known(self()) <= fresh_seq_) return;
  const DagNode u = dag_.get(self(), fresh_seq_ + 1);

  // Lines 28-30: extensions use only descendants of u.
  const auto spine = dag_.canonical_spine();
  std::vector<DagNode> descendants;
  for (const DagNode& z : spine) {
    if (SampleDag::precedes(u, z)) descendants.push_back(z);
  }
  if (descendants.empty()) return;
  const auto extension = to_script(descendants);

  ProcessSet quorum;
  for (const SigmaConfig& c : sigma_configs_) {
    std::vector<ScriptStep> script = c.base;
    script.insert(script.end(), extension.begin(), extension.end());
    const auto res = run_sandbox(spec_, forest_initial_config(n(), c.tree),
                                 script, self());
    if (!res.decision.has_value()) {
      // No deciding extension yet (line 31: keep extending) — retry next
      // round, when the spine has grown.
      return;
    }
    if (res.decided_after <= c.base.size()) {
      // p had already decided within the base prefix: the empty
      // extension decides and contributes no steppers (this happens for
      // the full-length prefix of S0/S1). The empty-base configuration
      // always contributes a non-empty extension, so the union stays
      // non-empty.
      continue;
    }
    // Steppers of the deciding extension only (line 32).
    for (std::size_t k = c.base.size(); k < res.decided_after; ++k) {
      quorum.insert(script[k].p);
    }
  }
  WFD_CHECK(!quorum.empty());
  sigma_output_ = quorum;
  ++sigma_rounds_;
  fresh_seq_ = dag_.known(self());
}

void PsiExtractionModule::record_sample_point() {
  if (sink_ == nullptr || ticks_ % opt_.sample_period != 0) return;
  sim::FdSampleRecord rec;
  rec.p = self();
  rec.t = now();
  rec.value = fd_value();
  sink_->push_back(rec);
}

fd::FdValue PsiExtractionModule::fd_value() const {
  fd::FdValue v;
  switch (stage_) {
    case Stage::kForest:
    case Stage::kAgreeing:
      v.psi = fd::PsiValue::bottom();
      break;
    case Stage::kRed:
      v.psi = fd::PsiValue::failure_signal(fd::FsColor::kRed);
      break;
    case Stage::kOmegaSigma:
      v.psi = fd::PsiValue::omega_sigma(omega_output_, sigma_output_);
      v.omega = omega_output_;
      v.sigma = sigma_output_;
      break;
  }
  return v;
}

}  // namespace wfd::extract
