#include "extract/participant_tracker.h"

#include <memory>

#include "common/check.h"

namespace wfd::extract {

void ParticipantTracker::begin_write(std::uint64_t k) {
  WriteId id{self_, k};
  ProcessSet initial;
  initial.insert(self_);
  carried_[id] = initial;
}

ProcessSet ParticipantTracker::end_write(std::uint64_t k) {
  WriteId id{self_, k};
  auto it = carried_.find(id);
  WFD_CHECK_MSG(it != carried_.end(), "end_write without begin_write");
  ProcessSet participants = it->second;
  carried_.erase(it);
  auto& done = completed_[self_];
  done = std::max(done, k);
  return participants;
}

sim::MessageMetaPtr ParticipantTracker::outgoing_meta() {
  if (carried_.empty() && completed_.empty()) return nullptr;
  auto meta = std::make_shared<ParticipationMeta>();
  meta->carried = carried_;
  meta->completed = completed_;
  return meta;
}

void ParticipantTracker::incoming_meta(ProcessId /*from*/,
                                       const sim::MessageMeta& meta) {
  const auto* m = dynamic_cast<const ParticipationMeta*>(&meta);
  if (m == nullptr) return;
  // Garbage collection first: learn about completed writes.
  for (const auto& [writer, k] : m->completed) {
    auto& done = completed_[writer];
    done = std::max(done, k);
  }
  for (const auto& [id, participants] : m->carried) {
    auto done_it = completed_.find(id.writer);
    if (done_it != completed_.end() && done_it->second >= id.k) {
      continue;  // Write already finished; its set is frozen elsewhere.
    }
    // Receiving a tagged message makes this process a participant: its
    // current event causally follows the write's invocation.
    ProcessSet& mine = carried_[id];
    mine = mine.set_union(participants);
    mine.insert(self_);
  }
  // Drop any local tags that are now known complete.
  for (auto it = carried_.begin(); it != carried_.end();) {
    auto done_it = completed_.find(it->first.writer);
    if (done_it != completed_.end() && done_it->second >= it->first.k &&
        it->first.writer != self_) {
      it = carried_.erase(it);
    } else {
      ++it;
    }
  }
}

ProcessSet ParticipantTracker::known_participants(WriteId id) const {
  auto it = carried_.find(id);
  return it == carried_.end() ? ProcessSet{} : it->second;
}

}  // namespace wfd::extract
