// Causal participation tracking for the Figure 1 extraction.
//
// The extraction needs, for each write operation w on register Reg_i, the
// participant set P_i(k) = { p_j : some event of p_j lies causally
// between w's invocation and w's response } (Lamport's happens-before
// [17]). The tracker implements the paper's tagging scheme at the
// transport level: while a write (i, k) is active, every message sent by
// a process that has (transitively) heard of it carries the tag (i, k)
// together with the set of processes known to have participated; a
// process receiving a tagged message becomes a participant itself and
// propagates the enlarged set. Because participation knowledge flows
// along exactly the causal chains the definition quantifies over, the
// writer's accumulated set at the write's response equals P_i(k).
//
// Metadata for completed writes is garbage-collected via piggybacked
// per-writer completion counters.
#pragma once

#include <cstdint>
#include <map>

#include "common/process_set.h"
#include "sim/process.h"

namespace wfd::extract {

/// Identifies the k-th write of process i.
struct WriteId {
  ProcessId writer = kNoProcess;
  std::uint64_t k = 0;
  friend bool operator==(const WriteId&, const WriteId&) = default;
  friend auto operator<=>(const WriteId&, const WriteId&) = default;
};

/// The piggybacked metadata: active write tags with their known
/// participant sets, and completion counters for garbage collection.
struct ParticipationMeta final : sim::MessageMeta {
  std::map<WriteId, ProcessSet> carried;
  std::map<ProcessId, std::uint64_t> completed;
};

class ParticipantTracker : public sim::TransportInstrument {
 public:
  explicit ParticipantTracker(ProcessId self) : self_(self) {}

  /// Writer-side: mark the start of write (self, k).
  void begin_write(std::uint64_t k);

  /// Writer-side: mark the end of write (self, k); returns P_self(k) and
  /// garbage-collects the tag.
  ProcessSet end_write(std::uint64_t k);

  /// TransportInstrument: tag every outgoing message with the active
  /// writes this process participates in.
  sim::MessageMetaPtr outgoing_meta() override;
  void incoming_meta(ProcessId from, const sim::MessageMeta& meta) override;

  /// Current known participants of an active write (for tests).
  [[nodiscard]] ProcessSet known_participants(WriteId id) const;

 private:
  ProcessId self_;
  std::map<WriteId, ProcessSet> carried_;
  std::map<ProcessId, std::uint64_t> completed_;
};

}  // namespace wfd::extract
