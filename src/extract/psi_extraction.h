// Extracting Psi from any QC algorithm (Figure 3 — the necessity half of
// Theorem 6).
//
// Given an algorithm A that solves QC using detector D, each process:
//
//   task 1: samples its D module, organises the samples into an
//     ever-growing DAG (gossiped and merged with the other processes'),
//     and simulates runs of A along the DAG's canonical path from the
//     n+1 initial configurations of the simulation forest;
//
//   task 2: waits until it decides in (a run of) every tree. A decision
//     of Q anywhere proves a failure occurred, so the process proposes
//     "red evidence" to a *real* execution of A; otherwise it proposes
//     the witness tuple (I0, I1, S0, S1) of an adjacent decision flip.
//     The real execution makes the branch choice uniform:
//       - red evidence / Q  ->  output red forever   (FS behaviour);
//       - a tuple           ->  extract Omega (critical-index analysis
//         of fresh forest windows, Section 6.3.1) and Sigma (deciding
//         extensions of the tuple's configurations driven by fresh
//         samples, lines 24-32 / Section 6.3.2) forever.
//
// Until the branch resolves, the emulated output is bottom — exactly
// Psi's shape.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "extract/qc_sandbox.h"
#include "extract/sample_dag.h"
#include "extract/sim_forest.h"
#include "qc/qc_api.h"
#include "sim/module.h"
#include "sim/trace.h"

namespace wfd::extract {

/// The value type of the real execution of A in task 2: either "I saw a
/// Q decision" (the paper's proposal of 0) or the decision-flip witness
/// (I0, I1, S0, S1), with the configurations given by tree indices.
struct ExtractProposal {
  bool red_evidence = false;
  int tree0 = 0;  ///< I0 = forest_initial_config(n, tree0).
  int tree1 = 0;
  std::vector<ScriptStep> s0;
  std::vector<ScriptStep> s1;

  friend bool operator==(const ExtractProposal&,
                         const ExtractProposal&) = default;

  void encode_state(sim::StateEncoder& enc) const {
    enc.field("red-evidence", red_evidence);
    enc.field("tree0", tree0);
    enc.field("tree1", tree1);
    sim::encode_field(enc, "s0", s0);
    sim::encode_field(enc, "s1", s1);
  }
};

class PsiExtractionModule : public sim::Module, public sim::FdSource {
 public:
  /// Creates the real execution of A over ExtractProposal values in the
  /// host process, under the given module name.
  using OuterFactory =
      std::function<qc::QcApi<ExtractProposal>&(sim::ModuleHost& host,
                                                const std::string& name)>;

  struct Options {
    Time sample_period = 64;   ///< Own steps between D samples.
    Time gossip_period = 256;  ///< Own steps between DAG broadcasts.
    Time analyze_period = 512; ///< Own steps between simulation rounds.
    /// Spine suffix length used for forest analyses (keeps deciding
    /// schedules short and dominated by fresh samples).
    std::size_t window = 768;
    /// Stride over the prefixes of S0/S1 when building the Sigma loop's
    /// configuration set C (1 = every prefix, the paper's set).
    std::size_t config_stride = 1;
  };

  PsiExtractionModule(SandboxSpec spec, OuterFactory outer,
                      std::vector<sim::FdSampleRecord>* sink)
      : PsiExtractionModule(std::move(spec), std::move(outer), sink,
                            Options{}) {}

  PsiExtractionModule(SandboxSpec spec, OuterFactory outer,
                      std::vector<sim::FdSampleRecord>* sink, Options opt);

  void on_start() override;
  void on_message(ProcessId from, const sim::Payload& msg) override;
  void on_tick() override;

  /// FdSource: the emulated Psi output (omega/sigma components also
  /// populated once the (Omega, Sigma) branch is live, mirroring
  /// PsiOracle).
  [[nodiscard]] fd::FdValue fd_value() const override;

  enum class Stage { kForest, kAgreeing, kRed, kOmegaSigma };
  [[nodiscard]] Stage stage() const { return stage_; }
  [[nodiscard]] const SampleDag& dag() const { return dag_; }
  [[nodiscard]] ProcessId omega_output() const { return omega_output_; }
  [[nodiscard]] ProcessSet sigma_output() const { return sigma_output_; }
  [[nodiscard]] std::uint64_t sigma_rounds() const { return sigma_rounds_; }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("stage", stage_);
    enc.field("ticks", ticks_);
    enc.push("dag");
    dag_.encode_state(enc);
    enc.pop();
    enc.field("omega-output", omega_output_);
    enc.field("sigma-output", sigma_output_);
    for (std::size_t i = 0; i < sigma_configs_.size(); ++i) {
      enc.push("sigma-config", i);
      enc.field("tree", sigma_configs_[i].tree);
      sim::encode_field(enc, "base", sigma_configs_[i].base);
      enc.pop();
    }
    enc.field("fresh-seq", fresh_seq_);
    enc.field("sigma-rounds", sigma_rounds_);
  }

  // Audited commuting (checked in tests/extract_psi_test.cpp): the
  // handler only folds the snapshot into dag_ via SampleDag::merge,
  // which extends per-process prefixes — merging two snapshots in
  // either order yields the per-process prefix union — and sends
  // nothing, emits no trace events, reads neither clock nor detector.
  // Every *reaction* to the merged DAG (gossip, analyze, stage
  // transitions) is tick-deferred to on_tick, which is what makes both
  // claims sound: consecutive gossip deliveries commute with each
  // other, and a delivery commutes with an adjacent inert lambda step.
  struct GossipMsg final : sim::Payload {
    explicit GossipMsg(std::vector<DagNode> n) : nodes(std::move(n)) {}
    std::vector<DagNode> nodes;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "gossip");
      sim::encode_field(enc, "nodes", nodes);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "ext.psi.gossip";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other) const override {
      return sim::payload_cast<GossipMsg>(other) != nullptr;
    }
    [[nodiscard]] bool tick_insensitive() const override { return true; }
  };

 private:
  /// One configuration of the Sigma loop's set C: an initial forest
  /// configuration plus a base schedule prefix.
  struct SigmaConfig {
    int tree = 0;
    std::vector<ScriptStep> base;
  };

  [[nodiscard]] std::vector<ScriptStep> spine_window() const;
  void forest_round();
  void on_outer_decided(const qc::QcResult<ExtractProposal>& r);
  void setup_sigma_configs(const ExtractProposal& tuple);
  void omega_round(const std::vector<ScriptStep>& window);
  void sigma_round();
  void record_sample_point();

  SandboxSpec spec_;
  OuterFactory outer_factory_;
  std::vector<sim::FdSampleRecord>* sink_;
  Options opt_;

  SampleDag dag_;
  Stage stage_ = Stage::kForest;
  Time ticks_ = 0;
  qc::QcApi<ExtractProposal>* outer_ = nullptr;

  // (Omega, Sigma) branch state.
  ProcessId omega_output_ = kNoProcess;
  ProcessSet sigma_output_;
  std::vector<SigmaConfig> sigma_configs_;
  /// The fresh sample u driving the current Sigma round: only nodes
  /// strictly after it may appear in deciding extensions.
  std::uint64_t fresh_seq_ = 0;
  std::uint64_t sigma_rounds_ = 0;
};

}  // namespace wfd::extract
