#include "extract/sample_dag.h"

#include <algorithm>

namespace wfd::extract {

const DagNode& SampleDag::add_sample(ProcessId p, fd::FdValue v) {
  WFD_CHECK(p >= 0 && p < n_);
  DagNode node;
  node.p = p;
  node.value = std::move(v);
  node.vc.resize(static_cast<std::size_t>(n_));
  for (ProcessId q = 0; q < n_; ++q) {
    node.vc[static_cast<std::size_t>(q)] = known(q);
  }
  node.seq = known(p) + 1;
  node.vc[static_cast<std::size_t>(p)] = node.seq;
  auto& vec = by_proc_[static_cast<std::size_t>(p)];
  vec.push_back(std::move(node));
  ++total_;
  return vec.back();
}

void SampleDag::merge(const std::vector<DagNode>& nodes) {
  for (const DagNode& node : nodes) {
    WFD_CHECK(node.p >= 0 && node.p < n_);
    auto& vec = by_proc_[static_cast<std::size_t>(node.p)];
    if (node.seq == static_cast<std::uint64_t>(vec.size()) + 1) {
      vec.push_back(node);
      ++total_;
    }
    // Earlier seq: already known (snapshots are per-process prefixes).
    // A gap cannot occur within one snapshot because snapshots list each
    // process's nodes in sequence order; across snapshots, merge order
    // preserves the prefix property.
  }
}

std::vector<DagNode> SampleDag::snapshot() const {
  std::vector<DagNode> out;
  out.reserve(static_cast<std::size_t>(total_));
  for (const auto& vec : by_proc_) {
    out.insert(out.end(), vec.begin(), vec.end());
  }
  return out;
}

std::vector<DagNode> SampleDag::canonical_spine() const {
  std::vector<const DagNode*> order;
  order.reserve(static_cast<std::size_t>(total_));
  for (const auto& vec : by_proc_) {
    for (const auto& node : vec) order.push_back(&node);
  }
  std::sort(order.begin(), order.end(),
            [](const DagNode* a, const DagNode* b) {
              const auto wa = a->weight();
              const auto wb = b->weight();
              if (wa != wb) return wa < wb;
              if (a->p != b->p) return a->p < b->p;
              return a->seq < b->seq;
            });
  std::vector<DagNode> spine;
  for (const DagNode* node : order) {
    if (spine.empty() || precedes(spine.back(), *node)) {
      spine.push_back(*node);
    }
  }
  return spine;
}

}  // namespace wfd::extract
