#include "extract/qc_sandbox.h"

#include <memory>

#include "common/check.h"
#include "fd/oracle.h"
#include "sim/scheduler.h"

namespace wfd::extract {
namespace {

/// Oracle replaying the script's detector values by step index.
class ScriptedOracle : public fd::Oracle {
 public:
  explicit ScriptedOracle(const std::vector<ScriptStep>* script)
      : script_(script) {}

  void begin_run(const sim::FailurePattern&, std::uint64_t, Time) override {}

  fd::FdValue query(ProcessId p, Time t) override {
    WFD_CHECK(t < script_->size());
    const ScriptStep& step = (*script_)[static_cast<std::size_t>(t)];
    WFD_CHECK(step.p == p);
    return step.value;
  }

  [[nodiscard]] std::string name() const override { return "scripted"; }

 private:
  const std::vector<ScriptStep>* script_;
};

/// Scheduler replaying the script's process sequence; each step delivers
/// the oldest pending message (or lambda).
class ScriptedScheduler : public sim::Scheduler {
 public:
  explicit ScriptedScheduler(const std::vector<ScriptStep>* script)
      : script_(script) {}

  void begin_run(int, const sim::FailurePattern&, std::uint64_t) override {}

  sim::StepChoice next(const sim::Network& net, const sim::FailurePattern&,
                       Time now) override {
    if (now >= script_->size()) return sim::StepChoice{};  // Script over.
    sim::StepChoice c;
    c.p = (*script_)[static_cast<std::size_t>(now)].p;
    c.message_id = net.oldest_for(c.p);
    return c;
  }

  [[nodiscard]] std::string name() const override { return "scripted"; }

 private:
  const std::vector<ScriptStep>* script_;
};

}  // namespace

SandboxResult run_sandbox(const SandboxSpec& spec,
                          const std::vector<int>& proposals,
                          const std::vector<ScriptStep>& script,
                          ProcessId observer) {
  WFD_CHECK(spec.n >= 1);
  WFD_CHECK(static_cast<int>(proposals.size()) == spec.n);
  sim::SimConfig cfg;
  cfg.n = spec.n;
  cfg.max_steps = static_cast<Time>(script.size());
  cfg.seed = 1;  // Fixed: replays must be identical everywhere.
  sim::Simulator inner(cfg, sim::FailurePattern(spec.n),
                       std::make_unique<ScriptedOracle>(&script),
                       std::make_unique<ScriptedScheduler>(&script));
  spec.build(inner, proposals);
  inner.set_halt_on_done(false);

  SandboxResult result;
  std::size_t steps_done = 0;
  while (steps_done < script.size()) {
    if (!inner.step()) break;
    result.steppers.insert(script[steps_done].p);
    ++steps_done;
    const auto d = spec.decision_of(inner, observer);
    if (d.has_value()) {
      result.decision = d;
      result.decided_after = steps_done;
      return result;
    }
  }
  result.decided_after = script.size() + 1;
  return result;
}

std::vector<int> forest_initial_config(int n, int i) {
  WFD_CHECK(i >= 0 && i <= n);
  std::vector<int> proposals(static_cast<std::size_t>(n), 0);
  for (int k = 0; k < i; ++k) proposals[static_cast<std::size_t>(k)] = 1;
  return proposals;
}

std::vector<ScriptStep> to_script(const std::vector<DagNode>& nodes) {
  std::vector<ScriptStep> script;
  script.reserve(nodes.size());
  for (const DagNode& node : nodes) {
    ScriptStep s;
    s.p = node.p;
    s.value = node.value;
    script.push_back(std::move(s));
  }
  return script;
}

}  // namespace wfd::extract
