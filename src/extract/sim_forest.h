// Simulation-forest analysis for the Figure 3 extraction.
//
// The forest has n+1 trees; tree i grows runs of the QC algorithm A from
// the initial configuration in which processes 0..i-1 propose 1 and the
// rest propose 0. This bounded implementation simulates each tree along
// one fair branch — the canonical spine of the sample DAG (every correct
// process appears infinitely often on it, so A's Termination guarantees
// a decision in every tree; see DESIGN.md for the fidelity notes).
//
// The Omega candidate is read off the decision flip: tree 0 (all propose
// 0) decides 0 and tree n (all propose 1) decides 1 by Validity, so some
// adjacent pair (i-1, i) decides differently; the configurations differ
// only in the proposal of process i-1, so that process's input was
// adopted — the paper's univalent critical index, whose pivotal process
// the extraction elects.
#pragma once

#include <optional>
#include <vector>

#include "extract/qc_sandbox.h"

namespace wfd::extract {

struct TreeOutcome {
  std::optional<int> decision;          ///< 0 / 1 / kQuitDecision.
  std::vector<ScriptStep> deciding_prefix;  ///< Script up to the decision.
};

struct ForestAnalysis {
  std::vector<TreeOutcome> trees;  ///< n+1 entries.
  bool all_decided = false;
  bool any_quit = false;
  /// Valid when all_decided && !any_quit: the smallest i with
  /// d_{i-1} == 0 and d_i == 1, and the corresponding leader (i-1).
  int critical_index = -1;
  ProcessId leader = kNoProcess;
};

/// Simulate all n+1 trees of the forest along `script` and analyse the
/// decisions of process `observer`.
ForestAnalysis analyze_forest(const SandboxSpec& spec,
                              const std::vector<ScriptStep>& script,
                              ProcessId observer);

}  // namespace wfd::extract
