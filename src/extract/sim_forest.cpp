#include "extract/sim_forest.h"

namespace wfd::extract {

ForestAnalysis analyze_forest(const SandboxSpec& spec,
                              const std::vector<ScriptStep>& script,
                              ProcessId observer) {
  ForestAnalysis out;
  out.trees.resize(static_cast<std::size_t>(spec.n) + 1);
  out.all_decided = true;
  for (int i = 0; i <= spec.n; ++i) {
    const auto res =
        run_sandbox(spec, forest_initial_config(spec.n, i), script, observer);
    auto& tree = out.trees[static_cast<std::size_t>(i)];
    tree.decision = res.decision;
    if (res.decision.has_value()) {
      tree.deciding_prefix.assign(script.begin(),
                                  script.begin() + static_cast<std::ptrdiff_t>(
                                                       res.decided_after));
      if (*res.decision == kQuitDecision) out.any_quit = true;
    } else {
      out.all_decided = false;
    }
  }
  if (!out.all_decided || out.any_quit) return out;
  for (int i = 1; i <= spec.n; ++i) {
    if (*out.trees[static_cast<std::size_t>(i - 1)].decision == 0 &&
        *out.trees[static_cast<std::size_t>(i)].decision == 1) {
      out.critical_index = i;
      out.leader = static_cast<ProcessId>(i - 1);
      break;
    }
  }
  return out;
}

}  // namespace wfd::extract
