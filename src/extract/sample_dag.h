// The DAG of failure-detector samples used by the Figure 3 extraction
// (built "exactly as in [3]", Chandra-Hadzilacos-Toueg).
//
// Each process repeatedly samples its local detector module and records
// a node (process, sequence number, value); when a node is created,
// edges run from every node currently in the creator's DAG to the new
// node. DAGs are exchanged by gossip and merged. Snapshots are causally
// closed (a node always travels together with its ancestors), so a
// node's ancestry is captured exactly by a vector clock: node x precedes
// node y iff y's clock covers x.
//
// The extraction simulates runs of the given QC algorithm along *paths*
// of the DAG. The canonical path ("spine") is the deterministic greedy
// filter of the canonical linear extension (nodes ordered by total clock
// weight); since it is a pure function of the DAG's contents, the spines
// of any two processes converge node by node as their DAGs converge —
// which is what makes the extracted outputs agree eventually.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "fd/values.h"
#include "sim/state_encoder.h"

namespace wfd::extract {

struct DagNode {
  ProcessId p = kNoProcess;
  std::uint64_t seq = 0;  ///< 1-based per-process sample counter.
  fd::FdValue value;
  /// vc[q] = highest sequence number of q's samples known when this node
  /// was created (vc[p] == seq).
  std::vector<std::uint64_t> vc;

  /// Total clock weight; strictly increases along DAG edges, so sorting
  /// by (weight, p, seq) is a linear extension of reachability.
  [[nodiscard]] std::uint64_t weight() const {
    std::uint64_t w = 0;
    for (auto s : vc) w += s;
    return w;
  }

  void encode_state(sim::StateEncoder& enc) const {
    enc.field("p", p);
    enc.field("seq", seq);
    sim::encode_field(enc, "value", value);
    sim::encode_field(enc, "vc", vc);
  }
};

class SampleDag {
 public:
  explicit SampleDag(int n) : n_(n), by_proc_(static_cast<std::size_t>(n)) {
    WFD_CHECK(n >= 1 && n <= kMaxProcesses);
  }

  [[nodiscard]] int n() const { return n_; }

  /// Record a fresh local sample of process p; returns the new node.
  const DagNode& add_sample(ProcessId p, fd::FdValue v);

  /// Merge a (causally closed) snapshot received by gossip.
  void merge(const std::vector<DagNode>& nodes);

  /// All nodes (per-process prefixes, concatenated).
  [[nodiscard]] std::vector<DagNode> snapshot() const;

  /// Nodes of process q known so far.
  [[nodiscard]] std::uint64_t known(ProcessId q) const {
    return static_cast<std::uint64_t>(
        by_proc_[static_cast<std::size_t>(q)].size());
  }

  [[nodiscard]] std::uint64_t size() const { return total_; }

  [[nodiscard]] const DagNode& get(ProcessId q, std::uint64_t seq) const {
    WFD_CHECK(seq >= 1 && seq <= known(q));
    return by_proc_[static_cast<std::size_t>(q)][static_cast<std::size_t>(seq - 1)];
  }

  /// Whether a precedes b (a path of edges leads from a to b).
  [[nodiscard]] static bool precedes(const DagNode& a, const DagNode& b) {
    if (a.p == b.p) return a.seq < b.seq;
    return b.vc[static_cast<std::size_t>(a.p)] >= a.seq;
  }

  /// The canonical path through the DAG: the greedy reachability filter
  /// of the canonical linear extension. Deterministic in the DAG's
  /// contents. Appending new nodes can only change the suffix past the
  /// last "stale" insertion, so prefixes stabilise as gossip catches up.
  [[nodiscard]] std::vector<DagNode> canonical_spine() const;

  /// The per-process sample prefixes determine the whole DAG (snapshots
  /// are causally closed), so encoding them encodes the DAG.
  void encode_state(sim::StateEncoder& enc) const {
    for (std::size_t q = 0; q < by_proc_.size(); ++q) {
      enc.push("proc", q);
      sim::encode_field(enc, "samples", by_proc_[q]);
      enc.pop();
    }
  }

 private:
  int n_;
  std::vector<std::vector<DagNode>> by_proc_;
  std::uint64_t total_ = 0;
};

}  // namespace wfd::extract
