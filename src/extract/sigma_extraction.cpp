#include "extract/sigma_extraction.h"

#include <algorithm>

namespace wfd::extract {

void SigmaExtractionModule::on_start() {
  // Lines 1-5: P_i(0) = Pi; E_i = {P_i(0)}; trust everyone initially.
  prev_participants_ = ProcessSet::full(n());
  ei_ = {prev_participants_};
  output_ = ProcessSet::full(n());
  start_iteration();
}

void SigmaExtractionModule::start_iteration() {
  // Lines 7-8: k := k+1; Reg_i.write(k, E_i).
  ++k_;
  state_ = PhaseState::kWriting;
  tracker_->begin_write(k_);
  const std::uint64_t k = k_;
  regs_[static_cast<std::size_t>(self())].write(ei_, [this, k] {
    if (k != k_) return;
    // Lines 8-10: P_i(k) := participants; E_i += {P_i(k)}; F_i := P_i(k-1).
    // E_i has set semantics ("the set of subsets of processes that
    // participate"), so duplicates are not re-added — this is what keeps
    // the register values and the probe fan-out bounded in long runs.
    const ProcessSet pk = tracker_->end_write(k_);
    if (std::find(ei_.begin(), ei_.end(), pk) == ei_.end()) {
      ei_.push_back(pk);
    }
    fi_ = prev_participants_;
    prev_participants_ = pk;
    // Lines 11-12: read all registers.
    state_ = PhaseState::kReading;
    read_index_ = 0;
    probe_sets_.clear();
    read_next_register();
  });
}

void SigmaExtractionModule::read_next_register() {
  if (read_index_ >= n()) {
    start_probes();
    return;
  }
  const std::uint64_t k = k_;
  const int j = read_index_++;
  regs_[static_cast<std::size_t>(j)].read([this, k](const QuorumList& lj) {
    if (k != k_) return;
    // Lines 13-16 gather the sets to probe; dedupe to bound the probe
    // fan-out (probing a set twice selects the same kind of witness).
    for (const ProcessSet& x : lj) {
      if (x.empty()) continue;
      if (std::find(probe_sets_.begin(), probe_sets_.end(), x) ==
          probe_sets_.end()) {
        probe_sets_.push_back(x);
      }
    }
    read_next_register();
  });
}

void SigmaExtractionModule::start_probes() {
  state_ = PhaseState::kProbing;
  ++probe_round_;
  probe_satisfied_.assign(probe_sets_.size(), false);
  if (probe_sets_.empty()) {
    finish_iteration();
    return;
  }
  // Line 14: send (k, ?) to all processes of every set.
  ProcessSet targets;
  for (const ProcessSet& x : probe_sets_) targets = targets.set_union(x);
  for (ProcessId t : targets.members()) {
    send(t, sim::make_payload<ProbeMsg>(probe_round_));
  }
}

void SigmaExtractionModule::on_message(ProcessId from,
                                       const sim::Payload& msg) {
  if (const auto* probe = sim::payload_cast<ProbeMsg>(msg)) {
    // Line 18 (task 2): always acknowledge probes.
    send(from, sim::make_payload<ProbeAck>(probe->id));
    return;
  }
  if (const auto* ack = sim::payload_cast<ProbeAck>(msg)) {
    if (state_ != PhaseState::kProbing || ack->id != probe_round_) return;
    // Lines 15-16: the first replier of each probed set joins F_i.
    bool all = true;
    for (std::size_t s = 0; s < probe_sets_.size(); ++s) {
      if (!probe_satisfied_[s] && probe_sets_[s].contains(from)) {
        probe_satisfied_[s] = true;
        fi_.insert(from);
      }
      all = all && probe_satisfied_[s];
    }
    if (all) finish_iteration();
    return;
  }
}

void SigmaExtractionModule::finish_iteration() {
  // Line 17: publish the new quorum, then loop.
  output_ = fi_;
  state_ = PhaseState::kIdle;
  start_iteration();
}

void SigmaExtractionModule::on_tick() {
  if (sink_ == nullptr) return;
  const Time period = opt_.sample_period != 0 ? opt_.sample_period : 8;
  if (++ticks_since_sample_ < period) return;
  ticks_since_sample_ = 0;
  sim::FdSampleRecord rec;
  rec.p = self();
  rec.t = now();
  rec.value = fd_value();
  sink_->push_back(rec);
}

}  // namespace wfd::extract
