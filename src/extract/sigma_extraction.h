// Extracting Sigma from any register implementation (Figure 1 — the
// necessity half of Theorem 1).
//
// Given n atomic registers Reg_0..Reg_{n-1} implemented by some
// algorithm A using some detector D (any of the library's register
// modules: Sigma-ABD, majority-ABD, or the consensus-backed SMR
// register), every process p_i runs forever:
//
//   k := k+1
//   Reg_i.write(k, E_i)            // E_i = {P_i(0)=Pi, P_i(1), ...}
//   P_i(k) := participants of the write   (causal tracking)
//   E_i := E_i  U  {P_i(k)};  F_i := P_i(k-1)
//   for j = 0..n-1:  L_j := Reg_j.read()
//       for each X in L_j: probe X, wait for one reply p_t; F_i += p_t
//   Sigma-output_i := F_i
//
// Intersection of any two emulated quorums follows from atomicity of the
// registers (each process writes before it reads the others);
// completeness holds because after the last crash both the participant
// sets of fresh writes and the probe repliers are correct processes.
// Every probed set contains at least one correct process (otherwise a
// read after its members crashed could not return the corresponding
// write), so the extraction never blocks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/process_set.h"
#include "extract/participant_tracker.h"
#include "sim/module.h"
#include "sim/trace.h"

namespace wfd::extract {

/// The register value written by process i: its current E_i (the list of
/// participant sets of its writes so far; index 0 is Pi).
using QuorumList = std::vector<ProcessSet>;

/// Abstract register handle so the extraction can run over any register
/// implementation (ABD over Sigma, ABD over majorities, SMR-backed).
struct RegisterHandle {
  std::function<void(const QuorumList&, std::function<void()>)> write;
  std::function<void(std::function<void(const QuorumList&)>)> read;
};

class SigmaExtractionModule : public sim::Module, public sim::FdSource {
 public:
  struct Options {
    /// Record a Sigma-output sample every so many own steps (0 = 8).
    Time sample_period = 0;
  };

  /// `registers[j]` must access Reg_j; `tracker` must be installed as the
  /// host's transport instrument; `sink` (optional) receives periodic
  /// FdSampleRecords of the emulated output for history checking.
  SigmaExtractionModule(std::vector<RegisterHandle> registers,
                        ParticipantTracker* tracker,
                        std::vector<sim::FdSampleRecord>* sink)
      : SigmaExtractionModule(std::move(registers), tracker, sink,
                              Options{}) {}

  SigmaExtractionModule(std::vector<RegisterHandle> registers,
                        ParticipantTracker* tracker,
                        std::vector<sim::FdSampleRecord>* sink, Options opt)
      : opt_(opt),
        regs_(std::move(registers)),
        tracker_(tracker),
        sink_(sink) {
    WFD_CHECK(tracker_ != nullptr);
    WFD_CHECK(!regs_.empty());
  }

  void on_start() override;
  void on_message(ProcessId from, const sim::Payload& msg) override;
  void on_tick() override;

  /// FdSource: the emulated Sigma output.
  [[nodiscard]] fd::FdValue fd_value() const override {
    fd::FdValue v;
    v.sigma = output_;
    return v;
  }

  [[nodiscard]] ProcessSet output() const { return output_; }
  [[nodiscard]] std::uint64_t iterations() const { return k_; }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("state", state_);
    enc.field("k", k_);
    sim::encode_field(enc, "ei", ei_);
    enc.field("prev-participants", prev_participants_);
    enc.field("fi", fi_);
    enc.field("output", output_);
    enc.field("read-index", read_index_);
    sim::encode_field(enc, "probe-sets", probe_sets_);
    for (std::size_t i = 0; i < probe_satisfied_.size(); ++i) {
      enc.push("probe-ok", i);
      enc.field("val", static_cast<bool>(probe_satisfied_[i]));
      enc.pop();
    }
    enc.field("probe-round", probe_round_);
    enc.field("ticks-since-sample", ticks_since_sample_);
  }

 private:
  // Probes commute with each other: the handler is a stateless echo
  // whose reply content is fixed by the probe itself.
  struct ProbeMsg final : sim::Payload {
    explicit ProbeMsg(std::uint64_t i) : id(i) {}
    std::uint64_t id;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "probe");
      enc.field("id", id);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "ext.sigma.probe";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      return sim::payload_cast<ProbeMsg>(other) != nullptr;
    }
  };
  // Audited non-commuting: the *first* replier of each probed set joins
  // F_i, and finish_iteration() runs inside the handler — order decides
  // both the membership of F_i and the iteration boundary.
  struct ProbeAck final : sim::Payload {
    explicit ProbeAck(std::uint64_t i) : id(i) {}
    std::uint64_t id;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "probe-ack");
      enc.field("id", id);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "ext.sigma.probe-ack";
    }
  };

  void start_iteration();
  void read_next_register();
  void start_probes();
  void finish_iteration();

  Options opt_;
  std::vector<RegisterHandle> regs_;
  ParticipantTracker* tracker_;
  std::vector<sim::FdSampleRecord>* sink_;

  enum class PhaseState { kIdle, kWriting, kReading, kProbing };
  PhaseState state_ = PhaseState::kIdle;

  std::uint64_t k_ = 0;             ///< Current write number.
  QuorumList ei_;                   ///< E_i.
  ProcessSet prev_participants_;    ///< P_i(k-1).
  ProcessSet fi_;                   ///< F_i under construction.
  ProcessSet output_;               ///< Sigma-output_i.

  int read_index_ = 0;
  std::vector<ProcessSet> probe_sets_;   ///< Sets gathered from all reads.
  std::vector<bool> probe_satisfied_;
  std::uint64_t probe_round_ = 0;
  Time ticks_since_sample_ = 0;
};

}  // namespace wfd::extract
