// Deterministic sandbox simulation of a QC algorithm along a DAG path —
// the "simulated runs of A" of the Figure 3 extraction (task 1, line 6,
// and the Sigma loop, lines 26-32).
//
// A script is a sequence of (process, detector value) pairs taken from a
// path of the sample DAG. The sandbox replays the given QC algorithm
// from an initial configuration (a proposal per process) applying the
// script: at step k, process script[k].p takes one atomic step, receives
// its oldest pending message (or lambda if none) and sees detector value
// script[k].value. The replay is a pure function of (algorithm,
// proposals, script) — which is exactly why different processes
// simulating the same data reach the same conclusions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/process_set.h"
#include "extract/sample_dag.h"
#include "sim/simulator.h"

namespace wfd::extract {

/// One scripted step.
struct ScriptStep {
  ProcessId p = kNoProcess;
  fd::FdValue value;

  friend bool operator==(const ScriptStep& a, const ScriptStep& b) {
    return a.p == b.p && a.value == b.value;
  }

  void encode_state(sim::StateEncoder& enc) const {
    enc.field("p", p);
    sim::encode_field(enc, "value", value);
  }
};

/// Decision code in sandbox runs: 0/1 for values, kQuitDecision for Q.
inline constexpr int kQuitDecision = -2;

/// How to instantiate and observe the QC algorithm A under test.
struct SandboxSpec {
  int n = 0;
  /// Build the A stack into the (empty) inner simulator; processes must
  /// propose `proposals[i]` (0/1).
  std::function<void(sim::Simulator&, const std::vector<int>& proposals)>
      build;
  /// Decision of process p in the inner simulator, if reached
  /// (0/1/kQuitDecision).
  std::function<std::optional<int>(sim::Simulator&, ProcessId)> decision_of;
};

struct SandboxResult {
  /// The observer's decision, if reached within the script.
  std::optional<int> decision;
  /// 1-based script length after which the observer first decided
  /// (script.size() + 1 when it never did).
  std::size_t decided_after = 0;
  /// Processes that took at least one step within the first
  /// `decided_after` steps (the whole script if no decision).
  ProcessSet steppers;
};

/// Replay `script` from the initial configuration `proposals` and watch
/// process `observer`.
SandboxResult run_sandbox(const SandboxSpec& spec,
                          const std::vector<int>& proposals,
                          const std::vector<ScriptStep>& script,
                          ProcessId observer);

/// The initial configuration of the i-th tree of the simulation forest:
/// processes 0..i-1 propose 1, the rest propose 0 (i in 0..n).
std::vector<int> forest_initial_config(int n, int i);

/// Convenience: turn DAG nodes into script steps.
std::vector<ScriptStep> to_script(const std::vector<DagNode>& nodes);

}  // namespace wfd::extract
