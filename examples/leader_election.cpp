// Implementing Omega with heartbeats under partial synchrony.
//
// The oracle detectors elsewhere in the examples are *specifications*;
// this example shows a real message-passing implementation: heartbeats
// with adaptive timeouts elect the smallest trusted id. Before GST the
// leader can flap; after GST every surviving process converges to the
// same correct leader — the Omega behaviour that (with Sigma) is the
// weakest thing consensus needs.
//
// Build & run:   ./build/examples/leader_election
#include <cstdio>
#include <memory>
#include <vector>

#include "fd/omega_heartbeat.h"
#include "fd/oracle.h"
#include "sim/module.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

using namespace wfd;

int main() {
  constexpr int kN = 5;
  constexpr Time kGst = 20000;

  sim::FailurePattern pattern(kN);
  pattern.crash_at(0, 10000);  // The initial "leader" (smallest id) dies...
  pattern.crash_at(1, 35000);  // ...and so does its successor, after GST.

  sim::SimConfig cfg;
  cfg.n = kN;
  cfg.max_steps = 120000;
  cfg.seed = 3;
  sim::Simulator sim(cfg, pattern, std::make_unique<fd::NullOracle>(),
                     std::make_unique<sim::PartialSynchronyScheduler>(kGst));

  std::vector<fd::OmegaHeartbeatModule*> omegas(kN, nullptr);
  for (int i = 0; i < kN; ++i) {
    auto& host = sim.add_process<sim::ModularProcess>();
    omegas[static_cast<std::size_t>(i)] =
        &host.add_module<fd::OmegaHeartbeatModule>("omega");
  }

  std::printf("heartbeat-based Omega, n=%d, GST at t=%llu\n", kN,
              static_cast<unsigned long long>(kGst));
  std::printf("crashes: p0 at t=10000, p1 at t=35000\n\n");
  std::printf("%10s", "t");
  for (int i = 0; i < kN; ++i) std::printf("   p%d", i);
  std::printf("\n");

  sim.set_halt_on_done(false);
  for (int slice = 0; slice < 12; ++slice) {
    sim.run_for(10000);
    std::printf("%10llu", static_cast<unsigned long long>(sim.now()));
    for (int i = 0; i < kN; ++i) {
      if (pattern.crashed(i, sim.now())) {
        std::printf("    x");
      } else {
        std::printf("   %2d",
                    omegas[static_cast<std::size_t>(i)]->current_leader());
      }
    }
    std::printf("\n");
  }

  std::printf("\nexpected: columns converge to 2 (the smallest correct id) "
              "after GST and the crash of p1.\n");
  return 0;
}
