// Watching the Figure 1 extraction emulate Sigma, live.
//
// The deepest idea in the paper's Theorem 1 is the necessity direction:
// *any* register implementation secretly contains a quorum failure
// detector. This demo runs majority-ABD registers — an algorithm using
// NO failure detector at all — in a majority-correct system, mounts the
// Figure 1 transformation on top, and prints each process's emulated
// Sigma output as the run progresses: watch the quorums start at
// {everyone}, then track the causal participant sets of real writes,
// and shed the crashed replica soon after it dies.
//
// Build & run:   ./build/examples/extraction_demo
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "extract/participant_tracker.h"
#include "extract/sigma_extraction.h"
#include "fd/history_checker.h"
#include "fd/oracle.h"
#include "reg/abd_register.h"
#include "sim/module.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

using namespace wfd;
using extract::ParticipantTracker;
using extract::QuorumList;
using extract::RegisterHandle;
using extract::SigmaExtractionModule;
using Reg = reg::AbdRegisterModule<QuorumList>;

int main() {
  constexpr int kN = 3;
  sim::FailurePattern pattern(kN);
  pattern.crash_at(2, 30000);  // One replica dies mid-run.

  sim::SimConfig cfg;
  cfg.n = kN;
  cfg.max_steps = 120000;
  cfg.seed = 42;
  sim::Simulator sim(cfg, pattern, std::make_unique<fd::NullOracle>(),
                     std::make_unique<sim::RandomFairScheduler>());

  std::vector<sim::FdSampleRecord> samples;
  std::vector<std::unique_ptr<ParticipantTracker>> trackers;
  std::vector<SigmaExtractionModule*> extractors;
  for (int i = 0; i < kN; ++i) {
    auto& host = sim.add_process<sim::ModularProcess>();
    trackers.push_back(std::make_unique<ParticipantTracker>(i));
    host.set_instrument(trackers.back().get());
    std::vector<RegisterHandle> handles;
    for (int j = 0; j < kN; ++j) {
      Reg::Options opt;
      opt.rule = reg::QuorumRule::kMajority;  // Algorithm A uses no detector.
      auto& r = host.add_module<Reg>("xreg/" + std::to_string(j), opt);
      RegisterHandle h;
      h.write = [&r](const QuorumList& v, std::function<void()> cb) {
        r.write(v, std::move(cb));
      };
      h.read = [&r](std::function<void(const QuorumList&)> cb) {
        r.read(std::move(cb));
      };
      handles.push_back(std::move(h));
    }
    extractors.push_back(&host.add_module<SigmaExtractionModule>(
        "extract", std::move(handles), trackers.back().get(), &samples));
  }

  std::printf("Figure 1: extracting Sigma from majority-ABD registers "
              "(no oracle), n=%d, p2 crashes at t=30000\n\n", kN);
  std::printf("%9s  %-12s %-12s %-12s %8s\n", "t", "Sigma-out p0",
              "Sigma-out p1", "Sigma-out p2", "iters p0");
  sim.set_halt_on_done(false);
  for (int slice = 0; slice < 12; ++slice) {
    sim.run_for(10000);
    std::printf("%9llu", static_cast<unsigned long long>(sim.now()));
    for (int i = 0; i < kN; ++i) {
      if (pattern.crashed(i, sim.now())) {
        std::printf("  %-12s", "x");
      } else {
        std::printf("  %-12s",
                    extractors[static_cast<std::size_t>(i)]
                        ->output()
                        .to_string()
                        .c_str());
      }
    }
    std::printf("  %7llu\n",
                static_cast<unsigned long long>(extractors[0]->iterations()));
  }

  const auto check = fd::check_sigma_history(samples, pattern);
  std::printf("\nemulated history is a legal Sigma history: %s",
              check.ok ? "yes" : "NO");
  if (check.ok) {
    std::printf(" (completeness witness at t=%llu)",
                static_cast<unsigned long long>(check.witness_time));
  } else {
    std::printf("  [%s]", check.violation.c_str());
  }
  std::printf("\n");
  return check.ok ? 0 : 1;
}
