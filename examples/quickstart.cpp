// Quickstart: fault-tolerant consensus with the weakest detector.
//
// Five processes propose values; two of them crash mid-run. With the
// (Omega, Sigma) failure detector — the weakest one that solves
// consensus in ANY environment (Corollary 4 of the paper) — the
// survivors still reach a common decision.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "consensus/omega_sigma_consensus.h"
#include "fd/omega_oracle.h"
#include "fd/oracle.h"
#include "fd/sigma_oracle.h"
#include "sim/module.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

using namespace wfd;

int main() {
  constexpr int kN = 5;

  // 1. Pick the environment: who crashes, and when. Here processes 1
  //    and 3 crash — note that with a second crash pending, a correct
  //    majority is not guaranteed at all times, which is exactly where
  //    plain Omega-based consensus would be stuck without Sigma.
  sim::FailurePattern pattern(kN);
  pattern.crash_at(1, 2000);
  pattern.crash_at(3, 6000);

  // 2. Build the failure detector (Omega, Sigma) as an oracle drawing a
  //    legal history for this pattern.
  fd::OmegaOracle::Options omega_opt;
  omega_opt.max_stabilization = 1000;
  fd::SigmaOracle::Options sigma_opt;
  sigma_opt.max_stabilization = 1000;
  auto oracle = std::make_unique<fd::TupleOracle>(
      std::make_unique<fd::OmegaOracle>(omega_opt),
      std::make_unique<fd::SigmaOracle>(sigma_opt));

  // 3. Assemble the simulated system: one consensus module per process.
  sim::SimConfig cfg;
  cfg.n = kN;
  cfg.max_steps = 100000;
  cfg.seed = 2024;
  sim::Simulator sim(cfg, pattern, std::move(oracle),
                     std::make_unique<sim::RandomFairScheduler>());

  std::vector<std::optional<int>> decisions(kN);
  std::printf("proposals: ");
  for (int i = 0; i < kN; ++i) {
    auto& host = sim.add_process<sim::ModularProcess>();
    auto& cons =
        host.add_module<consensus::OmegaSigmaConsensusModule<int>>("cons");
    const int proposal = (i % 2 == 0) ? 10 + i : 20 + i;
    std::printf("p%d->%d ", i, proposal);
    cons.propose(proposal, [&decisions, i](const int& d) {
      decisions[static_cast<std::size_t>(i)] = d;
    });
  }
  std::printf("\n");

  // 4. Run to completion and report.
  const auto result = sim.run();
  std::printf("run: %llu steps, %llu messages\n",
              static_cast<unsigned long long>(result.steps),
              static_cast<unsigned long long>(
                  sim.trace().stats().messages_sent));
  for (int i = 0; i < kN; ++i) {
    if (decisions[static_cast<std::size_t>(i)].has_value()) {
      std::printf("p%d decided %d%s\n", i,
                  *decisions[static_cast<std::size_t>(i)],
                  pattern.faulty().contains(i) ? " (before crashing)" : "");
    } else {
      std::printf("p%d crashed without deciding\n", i);
    }
  }
  return 0;
}
