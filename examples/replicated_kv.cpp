// A replicated key-value store over Sigma-backed atomic registers.
//
// Theorem 1 in practice: one ABD register per key, with quorums supplied
// by the Sigma failure detector. The store stays linearizable AND live
// even when all but one replica crash — an environment in which the
// classical majority-based replication would block forever.
//
// Build & run:   ./build/examples/replicated_kv
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fd/sigma_oracle.h"
#include "reg/abd_register.h"
#include "sim/module.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

using namespace wfd;

namespace {

constexpr int kN = 4;
const std::vector<std::string> kKeys = {"alice", "bob", "carol"};

/// A client that runs a small scripted session against the KV store and
/// prints what it observes.
class KvClient : public sim::Module {
 public:
  using Register = reg::AbdRegisterModule<std::int64_t>;

  explicit KvClient(std::map<std::string, Register*> store)
      : store_(std::move(store)) {}

  void on_message(ProcessId, const sim::Payload&) override {}

  void on_tick() override {
    if (busy_ || script_pos_ >= script().size()) return;
    const auto& [key, deposit] = script()[script_pos_++];
    busy_ = true;
    Register* account = store_.at(key);
    if (deposit != 0) {
      // Read-modify-write is split into two linearizable ops here; a
      // production store would layer consensus (or the SMR register)
      // for true transactions — see the atomic_commit example.
      const std::string k = key;
      const std::int64_t add = deposit;
      account->read([this, account, k, add](const std::int64_t& balance) {
        account->write(balance + add, [this, k, add, balance] {
          std::printf("[t=%llu] p%d: %s += %lld (balance %lld -> %lld)\n",
                      static_cast<unsigned long long>(now()), self(),
                      k.c_str(), static_cast<long long>(add),
                      static_cast<long long>(balance),
                      static_cast<long long>(balance + add));
          busy_ = false;
        });
      });
    } else {
      const std::string k = key;
      account->read([this, k](const std::int64_t& balance) {
        std::printf("[t=%llu] p%d: read %s = %lld\n",
                    static_cast<unsigned long long>(now()), self(), k.c_str(),
                    static_cast<long long>(balance));
        busy_ = false;
      });
    }
  }

  [[nodiscard]] bool done() const override {
    return !busy_ && script_pos_ >= script().size();
  }

 private:
  /// (key, deposit) pairs; deposit 0 = plain read.
  [[nodiscard]] const std::vector<std::pair<std::string, std::int64_t>>&
  script() const {
    static const std::vector<std::pair<std::string, std::int64_t>> kScript = {
        {"alice", 100}, {"bob", 250}, {"alice", -40},
        {"carol", 75},  {"alice", 0}, {"bob", 0},
    };
    return kScript;
  }

  std::map<std::string, Register*> store_;
  bool busy_ = false;
  std::size_t script_pos_ = 0;
};

}  // namespace

int main() {
  // Three of four replicas crash *while the session is running* — only
  // p0 survives. Sigma keeps the store both safe and live regardless
  // (operations stall briefly until the detector's quorums shed the
  // crashed replicas, then proceed).
  sim::FailurePattern pattern(kN);
  pattern.crash_at(1, 150);
  pattern.crash_at(2, 250);
  pattern.crash_at(3, 350);

  fd::SigmaOracle::Options sigma_opt;
  sigma_opt.max_stabilization = 2000;

  sim::SimConfig cfg;
  cfg.n = kN;
  cfg.max_steps = 400000;
  cfg.seed = 7;
  sim::Simulator sim(cfg, pattern,
                     std::make_unique<fd::SigmaOracle>(sigma_opt),
                     std::make_unique<sim::RandomFairScheduler>());

  for (int i = 0; i < kN; ++i) {
    auto& host = sim.add_process<sim::ModularProcess>();
    std::map<std::string, KvClient::Register*> store;
    for (const auto& key : kKeys) {
      store[key] = &host.add_module<KvClient::Register>("kv/" + key);
    }
    // Only p0 runs the client session; all replicas serve the registers.
    if (i == 0) host.add_module<KvClient>("client", std::move(store));
  }

  std::printf("replicated KV store: %d replicas, 3 of them crash\n", kN);
  const auto result = sim.run();
  std::printf("run: %llu steps, all operations completed: %s\n",
              static_cast<unsigned long long>(result.steps),
              result.all_done ? "yes" : "NO");
  return 0;
}
