// Distributed transaction commit with NBAC over (Psi, FS).
//
// Corollary 10 in practice: four bank branches must atomically commit a
// money transfer. Each branch validates its part and votes Yes/No; the
// NBAC stack (Figure 4: votes + FS, then quittable consensus over Psi)
// decides Commit or Abort uniformly. Three scenarios:
//   1. every branch votes Yes, nobody crashes     -> Commit (mandatory);
//   2. one branch detects a problem and votes No  -> Abort;
//   3. one branch crashes before voting           -> Abort (non-blocking:
//      the survivors still terminate).
//
// Build & run:   ./build/examples/atomic_commit
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "fd/fs_oracle.h"
#include "fd/oracle.h"
#include "fd/psi_oracle.h"
#include "nbac/nbac_from_qc.h"
#include "qc/psi_qc.h"
#include "sim/module.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

using namespace wfd;

namespace {

constexpr int kN = 4;

struct Scenario {
  const char* name;
  std::vector<nbac::Vote> votes;
  std::optional<ProcessId> crash;  ///< Crashes at t=0, before voting.
  fd::PsiOracle::Branch branch;
};

void run_scenario(const Scenario& sc, std::uint64_t seed) {
  sim::FailurePattern pattern(kN);
  if (sc.crash.has_value()) pattern.crash_at(*sc.crash, 0);

  fd::PsiOracle::Options psi_opt;
  psi_opt.branch = sc.branch;
  psi_opt.max_switch_spread = 1000;
  fd::FsOracle::Options fs_opt;
  fs_opt.max_reaction_lag = 1000;
  auto oracle = std::make_unique<fd::TupleOracle>(
      std::make_unique<fd::PsiOracle>(psi_opt),
      std::make_unique<fd::FsOracle>(fs_opt));

  sim::SimConfig cfg;
  cfg.n = kN;
  cfg.max_steps = 200000;
  cfg.seed = seed;
  sim::Simulator sim(cfg, pattern, std::move(oracle),
                     std::make_unique<sim::RandomFairScheduler>());

  std::vector<std::optional<nbac::Decision>> decisions(kN);
  for (int i = 0; i < kN; ++i) {
    auto& host = sim.add_process<sim::ModularProcess>();
    auto& qc_mod = host.add_module<qc::PsiQcModule<int>>("qc");
    auto& nb = host.add_module<nbac::NbacFromQcModule>("nbac", &qc_mod);
    if (!sc.crash.has_value() || *sc.crash != i) {
      nb.vote(sc.votes[static_cast<std::size_t>(i)],
              [&decisions, i](nbac::Decision d) {
                decisions[static_cast<std::size_t>(i)] = d;
              });
    }
  }

  const auto result = sim.run();
  std::printf("--- %s ---\n", sc.name);
  for (int i = 0; i < kN; ++i) {
    const char* vote =
        (sc.crash.has_value() && *sc.crash == i)
            ? "(crashed)"
            : (sc.votes[static_cast<std::size_t>(i)] == nbac::Vote::kYes
                   ? "Yes"
                   : "No");
    const char* decision = "-";
    if (decisions[static_cast<std::size_t>(i)].has_value()) {
      decision = *decisions[static_cast<std::size_t>(i)] ==
                         nbac::Decision::kCommit
                     ? "COMMIT"
                     : "ABORT";
    }
    std::printf("  branch %d: vote %-9s decision %s\n", i, vote, decision);
  }
  std::printf("  (%llu steps, %llu messages)\n",
              static_cast<unsigned long long>(result.steps),
              static_cast<unsigned long long>(
                  sim.trace().stats().messages_sent));
}

}  // namespace

int main() {
  std::printf("atomic commitment across %d bank branches (NBAC over "
              "(Psi, FS))\n\n", kN);

  run_scenario({"all Yes, no failure: must commit",
                {nbac::Vote::kYes, nbac::Vote::kYes, nbac::Vote::kYes,
                 nbac::Vote::kYes},
                std::nullopt,
                fd::PsiOracle::Branch::kOmegaSigma},
               11);

  run_scenario({"branch 2 votes No: abort",
                {nbac::Vote::kYes, nbac::Vote::kYes, nbac::Vote::kNo,
                 nbac::Vote::kYes},
                std::nullopt,
                fd::PsiOracle::Branch::kOmegaSigma},
               12);

  run_scenario({"branch 1 crashes before voting: abort, survivors live on",
                {nbac::Vote::kYes, nbac::Vote::kYes, nbac::Vote::kYes,
                 nbac::Vote::kYes},
                ProcessId{1},
                fd::PsiOracle::Branch::kFs},
               13);

  return 0;
}
