file(REMOVE_RECURSE
  "CMakeFiles/bench_qc.dir/bench_qc.cpp.o"
  "CMakeFiles/bench_qc.dir/bench_qc.cpp.o.d"
  "bench_qc"
  "bench_qc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
