# Empty dependencies file for bench_qc.
# This may be replaced when dependencies are built.
