file(REMOVE_RECURSE
  "CMakeFiles/bench_nbac.dir/bench_nbac.cpp.o"
  "CMakeFiles/bench_nbac.dir/bench_nbac.cpp.o.d"
  "bench_nbac"
  "bench_nbac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nbac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
