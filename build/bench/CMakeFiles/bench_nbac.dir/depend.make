# Empty dependencies file for bench_nbac.
# This may be replaced when dependencies are built.
