file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_core.dir/bench_sim_core.cpp.o"
  "CMakeFiles/bench_sim_core.dir/bench_sim_core.cpp.o.d"
  "bench_sim_core"
  "bench_sim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
