# Empty dependencies file for bench_sim_core.
# This may be replaced when dependencies are built.
