file(REMOVE_RECURSE
  "CMakeFiles/bench_extract_psi.dir/bench_extract_psi.cpp.o"
  "CMakeFiles/bench_extract_psi.dir/bench_extract_psi.cpp.o.d"
  "bench_extract_psi"
  "bench_extract_psi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extract_psi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
