# Empty dependencies file for bench_extract_psi.
# This may be replaced when dependencies are built.
