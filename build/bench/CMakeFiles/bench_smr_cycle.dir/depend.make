# Empty dependencies file for bench_smr_cycle.
# This may be replaced when dependencies are built.
