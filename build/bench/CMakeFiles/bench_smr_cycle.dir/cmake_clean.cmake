file(REMOVE_RECURSE
  "CMakeFiles/bench_smr_cycle.dir/bench_smr_cycle.cpp.o"
  "CMakeFiles/bench_smr_cycle.dir/bench_smr_cycle.cpp.o.d"
  "bench_smr_cycle"
  "bench_smr_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smr_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
