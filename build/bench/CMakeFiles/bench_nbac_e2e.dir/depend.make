# Empty dependencies file for bench_nbac_e2e.
# This may be replaced when dependencies are built.
