file(REMOVE_RECURSE
  "CMakeFiles/bench_register.dir/bench_register.cpp.o"
  "CMakeFiles/bench_register.dir/bench_register.cpp.o.d"
  "bench_register"
  "bench_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
