# Empty dependencies file for bench_register.
# This may be replaced when dependencies are built.
