file(REMOVE_RECURSE
  "CMakeFiles/bench_extract_sigma.dir/bench_extract_sigma.cpp.o"
  "CMakeFiles/bench_extract_sigma.dir/bench_extract_sigma.cpp.o.d"
  "bench_extract_sigma"
  "bench_extract_sigma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extract_sigma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
