# Empty dependencies file for bench_extract_sigma.
# This may be replaced when dependencies are built.
