file(REMOVE_RECURSE
  "CMakeFiles/bench_sigma_exnihilo.dir/bench_sigma_exnihilo.cpp.o"
  "CMakeFiles/bench_sigma_exnihilo.dir/bench_sigma_exnihilo.cpp.o.d"
  "bench_sigma_exnihilo"
  "bench_sigma_exnihilo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sigma_exnihilo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
