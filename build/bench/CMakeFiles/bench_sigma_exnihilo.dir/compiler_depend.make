# Empty compiler generated dependencies file for bench_sigma_exnihilo.
# This may be replaced when dependencies are built.
