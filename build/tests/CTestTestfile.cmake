# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fd_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/fd_impl_test[1]_include.cmake")
include("/root/repo/build/tests/register_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/qc_nbac_test[1]_include.cmake")
include("/root/repo/build/tests/smr_test[1]_include.cmake")
include("/root/repo/build/tests/extract_sigma_test[1]_include.cmake")
include("/root/repo/build/tests/extract_psi_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/classic_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/environment_extra_test[1]_include.cmake")
include("/root/repo/build/tests/broadcast_test[1]_include.cmake")
include("/root/repo/build/tests/replicated_object_test[1]_include.cmake")
include("/root/repo/build/tests/edge_case_test[1]_include.cmake")
