file(REMOVE_RECURSE
  "CMakeFiles/extract_psi_test.dir/extract_psi_test.cpp.o"
  "CMakeFiles/extract_psi_test.dir/extract_psi_test.cpp.o.d"
  "extract_psi_test"
  "extract_psi_test.pdb"
  "extract_psi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_psi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
