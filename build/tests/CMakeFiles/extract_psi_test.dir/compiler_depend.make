# Empty compiler generated dependencies file for extract_psi_test.
# This may be replaced when dependencies are built.
