file(REMOVE_RECURSE
  "CMakeFiles/replicated_object_test.dir/replicated_object_test.cpp.o"
  "CMakeFiles/replicated_object_test.dir/replicated_object_test.cpp.o.d"
  "replicated_object_test"
  "replicated_object_test.pdb"
  "replicated_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
