file(REMOVE_RECURSE
  "CMakeFiles/extract_sigma_test.dir/extract_sigma_test.cpp.o"
  "CMakeFiles/extract_sigma_test.dir/extract_sigma_test.cpp.o.d"
  "extract_sigma_test"
  "extract_sigma_test.pdb"
  "extract_sigma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_sigma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
