# Empty compiler generated dependencies file for fd_oracle_test.
# This may be replaced when dependencies are built.
