file(REMOVE_RECURSE
  "CMakeFiles/fd_oracle_test.dir/fd_oracle_test.cpp.o"
  "CMakeFiles/fd_oracle_test.dir/fd_oracle_test.cpp.o.d"
  "fd_oracle_test"
  "fd_oracle_test.pdb"
  "fd_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
