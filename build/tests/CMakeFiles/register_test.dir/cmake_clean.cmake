file(REMOVE_RECURSE
  "CMakeFiles/register_test.dir/register_test.cpp.o"
  "CMakeFiles/register_test.dir/register_test.cpp.o.d"
  "register_test"
  "register_test.pdb"
  "register_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
