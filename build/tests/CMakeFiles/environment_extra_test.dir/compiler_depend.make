# Empty compiler generated dependencies file for environment_extra_test.
# This may be replaced when dependencies are built.
