file(REMOVE_RECURSE
  "CMakeFiles/environment_extra_test.dir/environment_extra_test.cpp.o"
  "CMakeFiles/environment_extra_test.dir/environment_extra_test.cpp.o.d"
  "environment_extra_test"
  "environment_extra_test.pdb"
  "environment_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/environment_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
