file(REMOVE_RECURSE
  "CMakeFiles/qc_nbac_test.dir/qc_nbac_test.cpp.o"
  "CMakeFiles/qc_nbac_test.dir/qc_nbac_test.cpp.o.d"
  "qc_nbac_test"
  "qc_nbac_test.pdb"
  "qc_nbac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_nbac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
