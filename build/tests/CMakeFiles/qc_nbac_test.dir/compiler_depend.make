# Empty compiler generated dependencies file for qc_nbac_test.
# This may be replaced when dependencies are built.
