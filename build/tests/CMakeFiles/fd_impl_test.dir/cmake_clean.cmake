file(REMOVE_RECURSE
  "CMakeFiles/fd_impl_test.dir/fd_impl_test.cpp.o"
  "CMakeFiles/fd_impl_test.dir/fd_impl_test.cpp.o.d"
  "fd_impl_test"
  "fd_impl_test.pdb"
  "fd_impl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_impl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
