# Empty dependencies file for fd_impl_test.
# This may be replaced when dependencies are built.
