file(REMOVE_RECURSE
  "CMakeFiles/atomic_commit.dir/atomic_commit.cpp.o"
  "CMakeFiles/atomic_commit.dir/atomic_commit.cpp.o.d"
  "atomic_commit"
  "atomic_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
