# Empty dependencies file for atomic_commit.
# This may be replaced when dependencies are built.
