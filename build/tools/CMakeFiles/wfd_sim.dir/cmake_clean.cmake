file(REMOVE_RECURSE
  "CMakeFiles/wfd_sim.dir/wfd_sim.cpp.o"
  "CMakeFiles/wfd_sim.dir/wfd_sim.cpp.o.d"
  "wfd_sim"
  "wfd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
