# Empty compiler generated dependencies file for wfd_sim.
# This may be replaced when dependencies are built.
