
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/wfd.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/common/log.cpp.o.d"
  "/root/repo/src/common/process_set.cpp" "src/CMakeFiles/wfd.dir/common/process_set.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/common/process_set.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/wfd.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/common/rng.cpp.o.d"
  "/root/repo/src/extract/participant_tracker.cpp" "src/CMakeFiles/wfd.dir/extract/participant_tracker.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/extract/participant_tracker.cpp.o.d"
  "/root/repo/src/extract/psi_extraction.cpp" "src/CMakeFiles/wfd.dir/extract/psi_extraction.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/extract/psi_extraction.cpp.o.d"
  "/root/repo/src/extract/qc_sandbox.cpp" "src/CMakeFiles/wfd.dir/extract/qc_sandbox.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/extract/qc_sandbox.cpp.o.d"
  "/root/repo/src/extract/sample_dag.cpp" "src/CMakeFiles/wfd.dir/extract/sample_dag.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/extract/sample_dag.cpp.o.d"
  "/root/repo/src/extract/sigma_extraction.cpp" "src/CMakeFiles/wfd.dir/extract/sigma_extraction.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/extract/sigma_extraction.cpp.o.d"
  "/root/repo/src/extract/sim_forest.cpp" "src/CMakeFiles/wfd.dir/extract/sim_forest.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/extract/sim_forest.cpp.o.d"
  "/root/repo/src/fd/classic_oracles.cpp" "src/CMakeFiles/wfd.dir/fd/classic_oracles.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/classic_oracles.cpp.o.d"
  "/root/repo/src/fd/fs_heartbeat.cpp" "src/CMakeFiles/wfd.dir/fd/fs_heartbeat.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/fs_heartbeat.cpp.o.d"
  "/root/repo/src/fd/fs_oracle.cpp" "src/CMakeFiles/wfd.dir/fd/fs_oracle.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/fs_oracle.cpp.o.d"
  "/root/repo/src/fd/history_checker.cpp" "src/CMakeFiles/wfd.dir/fd/history_checker.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/history_checker.cpp.o.d"
  "/root/repo/src/fd/omega_heartbeat.cpp" "src/CMakeFiles/wfd.dir/fd/omega_heartbeat.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/omega_heartbeat.cpp.o.d"
  "/root/repo/src/fd/omega_oracle.cpp" "src/CMakeFiles/wfd.dir/fd/omega_oracle.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/omega_oracle.cpp.o.d"
  "/root/repo/src/fd/oracle.cpp" "src/CMakeFiles/wfd.dir/fd/oracle.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/oracle.cpp.o.d"
  "/root/repo/src/fd/psi_oracle.cpp" "src/CMakeFiles/wfd.dir/fd/psi_oracle.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/psi_oracle.cpp.o.d"
  "/root/repo/src/fd/sigma_majority.cpp" "src/CMakeFiles/wfd.dir/fd/sigma_majority.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/sigma_majority.cpp.o.d"
  "/root/repo/src/fd/sigma_oracle.cpp" "src/CMakeFiles/wfd.dir/fd/sigma_oracle.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/sigma_oracle.cpp.o.d"
  "/root/repo/src/fd/values.cpp" "src/CMakeFiles/wfd.dir/fd/values.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/fd/values.cpp.o.d"
  "/root/repo/src/reg/abd_register.cpp" "src/CMakeFiles/wfd.dir/reg/abd_register.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/reg/abd_register.cpp.o.d"
  "/root/repo/src/reg/linearizability.cpp" "src/CMakeFiles/wfd.dir/reg/linearizability.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/reg/linearizability.cpp.o.d"
  "/root/repo/src/reg/register_client.cpp" "src/CMakeFiles/wfd.dir/reg/register_client.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/reg/register_client.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/CMakeFiles/wfd.dir/sim/environment.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/sim/environment.cpp.o.d"
  "/root/repo/src/sim/failure_pattern.cpp" "src/CMakeFiles/wfd.dir/sim/failure_pattern.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/sim/failure_pattern.cpp.o.d"
  "/root/repo/src/sim/module.cpp" "src/CMakeFiles/wfd.dir/sim/module.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/sim/module.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/wfd.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/wfd.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/wfd.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/wfd.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/sim/trace.cpp.o.d"
  "/root/repo/src/smr/register_from_consensus.cpp" "src/CMakeFiles/wfd.dir/smr/register_from_consensus.cpp.o" "gcc" "src/CMakeFiles/wfd.dir/smr/register_from_consensus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
