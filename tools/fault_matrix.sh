#!/bin/sh
# Fault-injection matrix lane for wfd_check (driven by ctest, see
# tools/CMakeLists.txt). Runs every injection mode against every core
# problem at small n under a state budget:
#
#     {crash-explore, adversarial-FD, lossy-link}
#   x {consensus, qc, nbac, register}
#
# Claims checked per cell:
#
#  1. No run may report a violation (exit 3) or an option error (exit
#     1/2): every protocol here is correct, so any counterexample under
#     injected faults is a checker or wrapper bug. Exits 0 (exhausted
#     within budget) and 4 (budget reached, frontier saved) are both
#     graceful degradation.
#  2. A budget-capped cell must leave a resumable snapshot behind
#     (--save-state), so the matrix composes with the resume lane.
#  3. The crash and loss cells must actually exercise the adversary:
#     their --json reports must count injected faults.
#
# Plus one watchdog claim: a tree far too large for its deadline must
# come back as exit 4 with a partial JSON report (status "deadline"),
# not hang the lane.
#
# The script is plain POSIX sh and makes no timing assumptions beyond
# the deadline watchdog itself, so it runs unchanged under the
# asan/ubsan/tsan presets (slower builds just spend more of the budget).
#
# Usage: fault_matrix.sh /path/to/wfd_check
set -u

CHECK=${1:?usage: fault_matrix.sh /path/to/wfd_check}
DIR=$(mktemp -d) || exit 1
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

jstr() {
  printf '%s' "$1" | sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p"
}
jnum() {
  printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\)[,}].*/\1/p"
}

# Per-problem base arguments. Small n, shallow horizons and static
# detector histories where the problem allows it — the matrix probes
# fault handling, not tree size.
args_for() {
  case $1 in
  consensus) echo "--problem=consensus --n=3 --fd=static --depth=16" ;;
  qc) echo "--problem=qc --n=3 --depth=14" ;;
  nbac) echo "--problem=nbac --n=3 --fd=static --depth=14" ;;
  register) echo "--problem=register --n=3 --fd=static --reg-ops=1 \
                  --reg-readers=1 --depth=16" ;;
  *) fail "unknown problem $1" ;;
  esac
}

# One matrix cell: run with a budget and a snapshot, accept only clean
# outcomes, echo the JSON for mode-specific assertions.
cell() {
  prob=$1
  mode=$2
  shift 2
  snap="$DIR/$prob-$mode.wfds"
  out=$("$CHECK" $(args_for "$prob") "$@" --exhaustive --json \
    --budget-states=4000 --save-state="$snap") || rc=$?
  rc=${rc:-0}
  case $rc in
  0) ;;
  4)
    [ -f "$snap" ] || fail "$prob/$mode: budget exit without a snapshot"
    ;;
  *) fail "$prob/$mode: exit $rc: $out" ;;
  esac
  verdict=$(jstr "$out" verdict)
  [ "$verdict" = "clean" ] || fail "$prob/$mode: verdict $verdict"
  CELL_OUT=$out
  rc=
}

for prob in consensus qc nbac register; do
  # --- crash-explore: crash timing as a schedule choice ---------------
  cell "$prob" crash --crash=explore
  crashes=$(jnum "$CELL_OUT" injected_crashes)
  [ -n "$crashes" ] && [ "$crashes" -gt 0 ] ||
    fail "$prob/crash: no crashes injected ($crashes)"

  # --- adversarial FD: any output legal for the evolving pattern ------
  # (overrides the per-problem --fd=static; the adversary forces
  # per-query choice itself).
  cell "$prob" fd --fd=adversarial

  # --- lossy links: drop budget 1 per directed link -------------------
  # The drops>0 assertion is skipped for qc: its Psi-based module is
  # message-free (the algorithm runs against detector output alone), so
  # there is never an in-flight message to drop — the cell still proves
  # the option is accepted and nothing breaks.
  cell "$prob" loss --loss=drop:1
  if [ "$prob" != qc ]; then
    drops=$(jnum "$CELL_OUT" injected_drops)
    [ -n "$drops" ] && [ "$drops" -gt 0 ] ||
      fail "$prob/loss: no drops injected ($drops)"
  fi
  echo "matrix: $prob OK"
done

# --- deadline watchdog: a hung exhaustive run degrades to exit 4 ------
out=$("$CHECK" --problem=consensus --n=3 --crash=explore --exhaustive \
  --json --deadline-ms=300) || rc=$?
rc=${rc:-0}
[ "$rc" -eq 4 ] || fail "deadline run exited $rc, want 4"
status=$(jstr "$out" status)
[ "$status" = "deadline" ] || fail "deadline run reported status $status"
states=$(jnum "$out" states)
[ -n "$states" ] && [ "$states" -gt 0 ] ||
  fail "deadline run reported no partial progress"

echo "fault matrix OK"
