#!/bin/sh
# Lasso lifecycle lane for wfd_check (driven by ctest, see
# tools/CMakeLists.txt). Exercises the full liveness counterexample
# path on the seeded bug (--problem=consensus-live-bug):
#
#  1. The fair-cycle search finds the wedged-leader lasso, shrinks the
#     stem and loop, saves a replay file with a loop= line, exits 3.
#  2. --replay on that file re-validates the fair cycle (closure,
#     fairness, goal avoidance) by deterministic re-execution, exits 3.
#  3. Corrupting the loop — dropping one decision — must NOT replay as
#     a confirmed lasso (exit 0 with a reason), proving the validator
#     actually checks the cycle rather than rubber-stamping the file.
#  4. The same search split across --budget-states/--save-state/--resume
#     invocations reports the byte-identical stem and loop: the graph
#     snapshot (v4 groot=/gnode=/gedge= lines) round-trips and the
#     post-exhaustion search is deterministic on the merged graph.
#
# Plain POSIX sh, no timing assumptions — runs unchanged under the
# asan/ubsan/tsan presets.
#
# Usage: lasso_check.sh /path/to/wfd_check
set -u

CHECK=${1:?usage: lasso_check.sh /path/to/wfd_check}
DIR=$(mktemp -d) || exit 1
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

SCENARIO="--problem=consensus-live-bug --n=2 --liveness=termination
          --fd=static --reduction=none --depth=12 --max-states=0"

# 1. Find, shrink, save.
$CHECK --exhaustive $SCENARIO --save="$DIR/lasso.wfdr" \
  >"$DIR/found.out" 2>&1
[ $? -eq 3 ] || fail "search did not exit 3: $(cat "$DIR/found.out")"
grep -q "fair cycle avoiding the goal" "$DIR/found.out" ||
  fail "no fair-cycle message: $(cat "$DIR/found.out")"
grep -q "^loop=" "$DIR/lasso.wfdr" || fail "saved file has no loop= line"

# 2. Replay confirms.
$CHECK --replay="$DIR/lasso.wfdr" >"$DIR/replay.out" 2>&1
[ $? -eq 3 ] || fail "replay did not exit 3: $(cat "$DIR/replay.out")"
grep -q "lasso confirmed" "$DIR/replay.out" ||
  fail "replay did not confirm: $(cat "$DIR/replay.out")"

# 3. A corrupted loop must not confirm.
sed 's/^loop=\([0-9]*\),/loop=/' "$DIR/lasso.wfdr" >"$DIR/broken.wfdr"
cmp -s "$DIR/lasso.wfdr" "$DIR/broken.wfdr" &&
  fail "corruption step was a no-op (single-entry loop?)"
$CHECK --replay="$DIR/broken.wfdr" >"$DIR/broken.out" 2>&1
[ $? -eq 0 ] || fail "broken replay did not exit 0: $(cat "$DIR/broken.out")"
grep -q "lasso NOT confirmed" "$DIR/broken.out" ||
  fail "broken lasso was confirmed: $(cat "$DIR/broken.out")"

# 4. Split search reports the identical lasso.
$CHECK --exhaustive $SCENARIO --budget-states=50 \
  --save-state="$DIR/s.wfds" >"$DIR/split1.out" 2>&1
[ $? -eq 4 ] || fail "first installment did not exit 4"
$CHECK --exhaustive $SCENARIO --resume="$DIR/s.wfds" \
  --save="$DIR/lasso2.wfdr" >"$DIR/split2.out" 2>&1
[ $? -eq 3 ] || fail "resumed search did not exit 3: $(cat "$DIR/split2.out")"
grep "^decisions=\|^loop=" "$DIR/lasso.wfdr" >"$DIR/a"
grep "^decisions=\|^loop=" "$DIR/lasso2.wfdr" >"$DIR/b"
cmp -s "$DIR/a" "$DIR/b" ||
  fail "split search found a different lasso: $(cat "$DIR/a" "$DIR/b")"

echo "lasso lifecycle OK"
