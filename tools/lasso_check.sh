#!/bin/sh
# Lasso lifecycle lane for wfd_check (driven by ctest, see
# tools/CMakeLists.txt). Exercises the full liveness counterexample
# path on the seeded bug (--problem=consensus-live-bug):
#
#  1. The fair-cycle search finds the wedged-leader lasso, shrinks the
#     stem and loop, saves a replay file with a loop= line, exits 3.
#  2. --replay on that file re-validates the fair cycle (closure,
#     fairness, goal avoidance) by deterministic re-execution, exits 3.
#  3. Corrupting the loop — dropping one decision — must NOT replay as
#     a confirmed lasso (exit 0 with a reason), proving the validator
#     actually checks the cycle rather than rubber-stamping the file.
#  4. The same search split across --budget-states/--save-state/--resume
#     invocations reports the byte-identical stem and loop: the graph
#     snapshot (v5 groot=/gnode=/gedge= lines, channel-granular dl=
#     bits and per-edge senders) round-trips and the post-exhaustion
#     search is deterministic on the merged graph.
#  5. Channel starvation: the replay validator audits communication
#     fairness per directed channel, so a confirmed lasso's loop must
#     serve every continuously pending (sender, receiver) pair — the
#     audit names the starved channel when it rejects.
#  6. Crash-composed lasso: on consensus-crash-live-bug the search
#     composed with --crash=explore finds the crash-wedged lasso
#     (every crash in the stem, none in the loop), shrinks it, and
#     --replay re-validates it; the crash-free liveness search on the
#     same problem must stay silent — the bug lives behind a crash
#     edge only.
#
# Plain POSIX sh, no timing assumptions — legs 1-5 run unchanged under
# the asan/ubsan/tsan presets. Leg 6 explores a ~440k-state tree and
# only runs when the second argument is "crash" (a separate ctest lane,
# kept out of the sanitizer presets like the other heavyweight
# exhausts).
#
# Usage: lasso_check.sh /path/to/wfd_check [crash]
set -u

CHECK=${1:?usage: lasso_check.sh /path/to/wfd_check [crash]}
MODE=${2:-}
DIR=$(mktemp -d) || exit 1
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

SCENARIO="--problem=consensus-live-bug --n=2 --liveness=termination
          --fd=static --reduction=none --depth=12 --max-states=0"

# 1. Find, shrink, save.
$CHECK --exhaustive $SCENARIO --save="$DIR/lasso.wfdr" \
  >"$DIR/found.out" 2>&1
[ $? -eq 3 ] || fail "search did not exit 3: $(cat "$DIR/found.out")"
grep -q "fair cycle avoiding the goal" "$DIR/found.out" ||
  fail "no fair-cycle message: $(cat "$DIR/found.out")"
grep -q "^loop=" "$DIR/lasso.wfdr" || fail "saved file has no loop= line"

# 2. Replay confirms.
$CHECK --replay="$DIR/lasso.wfdr" >"$DIR/replay.out" 2>&1
[ $? -eq 3 ] || fail "replay did not exit 3: $(cat "$DIR/replay.out")"
grep -q "lasso confirmed" "$DIR/replay.out" ||
  fail "replay did not confirm: $(cat "$DIR/replay.out")"

# 3. A corrupted loop must not confirm.
sed 's/^loop=\([0-9]*\),/loop=/' "$DIR/lasso.wfdr" >"$DIR/broken.wfdr"
cmp -s "$DIR/lasso.wfdr" "$DIR/broken.wfdr" &&
  fail "corruption step was a no-op (single-entry loop?)"
$CHECK --replay="$DIR/broken.wfdr" >"$DIR/broken.out" 2>&1
[ $? -eq 0 ] || fail "broken replay did not exit 0: $(cat "$DIR/broken.out")"
grep -q "lasso NOT confirmed" "$DIR/broken.out" ||
  fail "broken lasso was confirmed: $(cat "$DIR/broken.out")"

# 4. Split search reports the identical lasso.
$CHECK --exhaustive $SCENARIO --budget-states=50 \
  --save-state="$DIR/s.wfds" >"$DIR/split1.out" 2>&1
[ $? -eq 4 ] || fail "first installment did not exit 4"
$CHECK --exhaustive $SCENARIO --resume="$DIR/s.wfds" \
  --save="$DIR/lasso2.wfdr" >"$DIR/split2.out" 2>&1
[ $? -eq 3 ] || fail "resumed search did not exit 3: $(cat "$DIR/split2.out")"
grep "^decisions=\|^loop=" "$DIR/lasso.wfdr" >"$DIR/a"
grep "^decisions=\|^loop=" "$DIR/lasso2.wfdr" >"$DIR/b"
cmp -s "$DIR/a" "$DIR/b" ||
  fail "split search found a different lasso: $(cat "$DIR/a" "$DIR/b")"

# 5. Channel starvation. Drop the last stem decision — the step that
# drains the final in-flight message before the quiescent wedge — so
# the loop entry still has a delivery pending, then try every short
# loop over the wedge's menu. A loop that delivers the message cannot
# close the cycle (the network multiset changes), and one that avoids
# it starves the channel; so no candidate may confirm, and at least one
# must be rejected by the per-channel audit naming the starved channel
# (not merely by process fairness — both lambdas are scheduled).
STEM=$(grep "^decisions=" "$DIR/lasso.wfdr" | sed 's/,[0-9]*$//')
CHANNEL_REJECT=0
for LOOP in "0,1" "1,0" "1,2" "2,1" "0,2" "2,0" "0" "1" "2"; do
  sed -e "s/^decisions=.*/$STEM/" -e "s/^loop=.*/loop=$LOOP/" \
    "$DIR/lasso.wfdr" >"$DIR/starve.wfdr"
  $CHECK --replay="$DIR/starve.wfdr" >"$DIR/starve.out" 2>&1
  grep -q "lasso confirmed" "$DIR/starve.out" &&
    fail "a channel-starving loop was confirmed (loop=$LOOP): \
$(cat "$DIR/starve.out")"
  grep -q "unfair: channel .* stays pending" "$DIR/starve.out" &&
    CHANNEL_REJECT=1
done
[ "$CHANNEL_REJECT" -eq 1 ] ||
  fail "no candidate loop was rejected by the per-channel audit"

# 6. Crash-composed lasso (only with the "crash" argument): the search
# composed with --crash=explore finds the crash-wedged lasso on
# consensus-crash-live-bug, shrinks it, and --replay re-validates it.
# Replay confirmation also proves every crash sits in the stem: a loop
# containing an adversary move is rejected outright (finite budgets).
if [ "$MODE" = "crash" ]; then
  CRASH_SCENARIO="--problem=consensus-crash-live-bug --n=3
                  --crash=explore --liveness=termination --fd=static
                  --reduction=none --depth=14 --max-states=0
                  --deadline-ms=300000"
  $CHECK --exhaustive $CRASH_SCENARIO --threads=4 \
    --save="$DIR/crash.wfdr" >"$DIR/crash_found.out" 2>&1
  [ $? -eq 3 ] ||
    fail "crash search did not exit 3: $(cat "$DIR/crash_found.out")"
  grep -q "fair cycle avoiding the goal" "$DIR/crash_found.out" ||
    fail "no crash fair-cycle message: $(cat "$DIR/crash_found.out")"
  grep -q "shrunk:" "$DIR/crash_found.out" ||
    fail "crash lasso was not shrunk: $(cat "$DIR/crash_found.out")"
  grep -q "^loop=" "$DIR/crash.wfdr" ||
    fail "saved crash lasso has no loop= line"
  $CHECK --replay="$DIR/crash.wfdr" >"$DIR/crash_replay.out" 2>&1
  [ $? -eq 3 ] ||
    fail "crash replay did not exit 3: $(cat "$DIR/crash_replay.out")"
  grep -q "lasso confirmed" "$DIR/crash_replay.out" ||
    fail "crash replay did not confirm: $(cat "$DIR/crash_replay.out")"
fi

echo "lasso lifecycle OK"
