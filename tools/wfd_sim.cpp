// wfd_sim — scenario runner for the weakest-failure-detector library.
//
// Runs one protocol instance in a configurable simulated system and
// reports the outcome and costs. Examples:
//
//   wfd_sim --problem=consensus --n=5 --crashes=4 --seed=7
//   wfd_sim --problem=nbac --n=4 --crashes=1 --branch=fs
//   wfd_sim --problem=register --n=5 --crashes=4 --rule=majority
//   wfd_sim --problem=qc --n=4 --branch=omegasigma --scheduler=rr
//   wfd_sim --problem=abcast --n=4 --crashes=1
//
// Every run is deterministic in --seed; crashes are staggered over the
// first --crash-window steps.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broadcast/atomic_broadcast.h"
#include "consensus/omega_sigma_consensus.h"
#include "fd/fs_oracle.h"
#include "fd/omega_oracle.h"
#include "fd/oracle.h"
#include "fd/psi_oracle.h"
#include "fd/sigma_oracle.h"
#include "nbac/nbac_from_qc.h"
#include "qc/psi_qc.h"
#include "reg/abd_register.h"
#include "reg/linearizability.h"
#include "reg/register_client.h"
#include "sim/module.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

using namespace wfd;

namespace {

struct Args {
  std::string problem = "consensus";
  int n = 5;
  int crashes = 0;
  Time crash_window = 2000;
  std::uint64_t seed = 1;
  Time steps = 400000;
  std::string scheduler = "random";
  std::string branch = "auto";      // For qc / nbac: psi branch.
  std::string rule = "sigma";       // For register: quorum rule.
  Time stabilization = 800;
};

void usage() {
  std::printf(
      "usage: wfd_sim [--problem=consensus|qc|nbac|register|abcast]\n"
      "               [--n=N] [--crashes=K] [--crash-window=T]\n"
      "               [--seed=S] [--steps=T] [--stab=T]\n"
      "               [--scheduler=random|rr|psync]\n"
      "               [--branch=auto|omegasigma|fs]   (qc/nbac)\n"
      "               [--rule=sigma|majority]         (register)\n");
}

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") return false;
    if (auto v = val("problem")) {
      a.problem = *v;
    } else if (auto v2 = val("n")) {
      a.n = std::atoi(v2->c_str());
    } else if (auto v3 = val("crashes")) {
      a.crashes = std::atoi(v3->c_str());
    } else if (auto v4 = val("seed")) {
      a.seed = std::strtoull(v4->c_str(), nullptr, 10);
    } else if (auto v5 = val("steps")) {
      a.steps = std::strtoull(v5->c_str(), nullptr, 10);
    } else if (auto v6 = val("scheduler")) {
      a.scheduler = *v6;
    } else if (auto v7 = val("branch")) {
      a.branch = *v7;
    } else if (auto v8 = val("rule")) {
      a.rule = *v8;
    } else if (auto v9 = val("crash-window")) {
      a.crash_window = std::strtoull(v9->c_str(), nullptr, 10);
    } else if (auto v10 = val("stab")) {
      a.stabilization = std::strtoull(v10->c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (a.n < 1 || a.n > kMaxProcesses || a.crashes < 0 || a.crashes >= a.n) {
    std::fprintf(stderr, "invalid n/crashes\n");
    return false;
  }
  return true;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const Args& a) {
  if (a.scheduler == "rr") return std::make_unique<sim::RoundRobinScheduler>();
  if (a.scheduler == "psync") {
    return std::make_unique<sim::PartialSynchronyScheduler>(a.steps / 8);
  }
  return std::make_unique<sim::RandomFairScheduler>();
}

fd::PsiOracle::Branch psi_branch(const Args& a) {
  if (a.branch == "omegasigma") return fd::PsiOracle::Branch::kOmegaSigma;
  if (a.branch == "fs") return fd::PsiOracle::Branch::kFs;
  return fd::PsiOracle::Branch::kAuto;
}

sim::FailurePattern make_pattern(const Args& a) {
  sim::FailurePattern f(a.n);
  for (int i = 0; i < a.crashes; ++i) {
    f.crash_at(i, (a.crash_window * static_cast<Time>(i + 1)) /
                      static_cast<Time>(a.crashes + 1));
  }
  return f;
}

void report_run(const sim::Simulator& s, const sim::RunResult& res) {
  std::printf("\nrun: %llu steps, %llu messages sent, %llu delivered, "
              "all-done=%s\n",
              static_cast<unsigned long long>(res.steps),
              static_cast<unsigned long long>(
                  s.trace().stats().messages_sent),
              static_cast<unsigned long long>(
                  s.trace().stats().messages_delivered),
              res.all_done ? "yes" : "NO");
}

int run_consensus(const Args& a) {
  fd::OmegaOracle::Options oo;
  oo.max_stabilization = a.stabilization;
  fd::SigmaOracle::Options so;
  so.max_stabilization = a.stabilization;
  sim::SimConfig cfg{a.n, a.steps, a.seed, false};
  sim::Simulator s(cfg, make_pattern(a),
                   std::make_unique<fd::TupleOracle>(
                       std::make_unique<fd::OmegaOracle>(oo),
                       std::make_unique<fd::SigmaOracle>(so)),
                   make_scheduler(a));
  std::vector<std::optional<int>> decisions(a.n);
  for (int i = 0; i < a.n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<consensus::OmegaSigmaConsensusModule<int>>(
        "cons");
    c.propose(i % 2, [&decisions, i](const int& d) {
      decisions[static_cast<std::size_t>(i)] = d;
    });
  }
  const auto res = s.run();
  for (int i = 0; i < a.n; ++i) {
    std::printf("p%d: %s\n", i,
                decisions[static_cast<std::size_t>(i)].has_value()
                    ? std::to_string(*decisions[static_cast<std::size_t>(i)])
                          .c_str()
                    : "-");
  }
  report_run(s, res);
  return res.all_done ? 0 : 2;
}

int run_qc(const Args& a) {
  fd::PsiOracle::Options po;
  po.branch = psi_branch(a);
  po.max_switch_spread = a.stabilization;
  sim::FailurePattern f = make_pattern(a);
  if (po.branch == fd::PsiOracle::Branch::kFs && f.faulty().empty()) {
    std::fprintf(stderr, "--branch=fs requires --crashes >= 1\n");
    return 1;
  }
  sim::SimConfig cfg{a.n, a.steps, a.seed, false};
  sim::Simulator s(cfg, f, std::make_unique<fd::PsiOracle>(po),
                   make_scheduler(a));
  std::vector<std::optional<qc::QcResult<int>>> results(a.n);
  for (int i = 0; i < a.n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
    q.propose(i % 2, [&results, i](const qc::QcResult<int>& r) {
      results[static_cast<std::size_t>(i)] = r;
    });
  }
  const auto res = s.run();
  for (int i = 0; i < a.n; ++i) {
    const auto& r = results[static_cast<std::size_t>(i)];
    std::printf("p%d: %s\n", i,
                !r.has_value() ? "-"
                : r->quit      ? "Q"
                               : std::to_string(r->value).c_str());
  }
  report_run(s, res);
  return res.all_done ? 0 : 2;
}

int run_nbac(const Args& a) {
  fd::PsiOracle::Options po;
  po.branch = psi_branch(a);
  po.max_switch_spread = a.stabilization;
  fd::FsOracle::Options fo;
  fo.max_reaction_lag = a.stabilization;
  sim::FailurePattern f = make_pattern(a);
  if (po.branch == fd::PsiOracle::Branch::kFs && f.faulty().empty()) {
    std::fprintf(stderr, "--branch=fs requires --crashes >= 1\n");
    return 1;
  }
  sim::SimConfig cfg{a.n, a.steps, a.seed, false};
  sim::Simulator s(cfg, f,
                   std::make_unique<fd::TupleOracle>(
                       std::make_unique<fd::PsiOracle>(po),
                       std::make_unique<fd::FsOracle>(fo)),
                   make_scheduler(a));
  std::vector<std::optional<nbac::Decision>> decisions(a.n);
  for (int i = 0; i < a.n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
    auto& nb = host.add_module<nbac::NbacFromQcModule>("nbac", &q);
    nb.vote(nbac::Vote::kYes, [&decisions, i](nbac::Decision d) {
      decisions[static_cast<std::size_t>(i)] = d;
    });
  }
  const auto res = s.run();
  for (int i = 0; i < a.n; ++i) {
    const auto& d = decisions[static_cast<std::size_t>(i)];
    std::printf("p%d: %s\n", i,
                !d.has_value()                      ? "-"
                : *d == nbac::Decision::kCommit     ? "COMMIT"
                                                    : "ABORT");
  }
  report_run(s, res);
  return res.all_done ? 0 : 2;
}

int run_register(const Args& a) {
  const bool sigma = a.rule != "majority";
  sim::SimConfig cfg{a.n, a.steps, a.seed, false};
  fd::SigmaOracle::Options so;
  so.max_stabilization = a.stabilization;
  auto oracle = sigma ? std::unique_ptr<fd::Oracle>(
                            std::make_unique<fd::SigmaOracle>(so))
                      : std::make_unique<fd::NullOracle>();
  sim::Simulator s(cfg, make_pattern(a), std::move(oracle),
                   make_scheduler(a));
  reg::History history;
  reg::AbdRegisterModule<std::int64_t>::Options ropt;
  ropt.rule = sigma ? reg::QuorumRule::kSigma : reg::QuorumRule::kMajority;
  reg::RegisterWorkloadModule::Options wopt;
  wopt.num_ops = 4;
  for (int i = 0; i < a.n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r =
        host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg", ropt);
    host.add_module<reg::RegisterWorkloadModule>("load", &r, &history, wopt);
  }
  const auto res = s.run();
  const auto lin = reg::check_linearizable(history);
  std::printf("ops completed: %zu / %zu, linearizable: %s\n",
              history.completed(), history.ops().size(),
              lin.ok ? "yes" : lin.violation.c_str());
  report_run(s, res);
  return (res.all_done && lin.ok) ? 0 : 2;
}

int run_abcast(const Args& a) {
  fd::OmegaOracle::Options oo;
  oo.max_stabilization = a.stabilization;
  fd::SigmaOracle::Options so;
  so.max_stabilization = a.stabilization;
  sim::SimConfig cfg{a.n, a.steps, a.seed, false};
  sim::Simulator s(cfg, make_pattern(a),
                   std::make_unique<fd::TupleOracle>(
                       std::make_unique<fd::OmegaOracle>(oo),
                       std::make_unique<fd::SigmaOracle>(so)),
                   make_scheduler(a));
  std::vector<broadcast::AtomicBroadcastModule*> abs;
  for (int i = 0; i < a.n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& ab = host.add_module<broadcast::AtomicBroadcastModule>("ab");
    ab.abcast(i + 1);
    ab.abcast(100 + i);
    abs.push_back(&ab);
  }
  const auto res = s.run();
  s.set_halt_on_done(false);
  s.run_for(50000);
  for (int i = 0; i < a.n; ++i) {
    std::printf("p%d log:", i);
    for (const auto& m : abs[static_cast<std::size_t>(i)]->delivered_log()) {
      std::printf(" %lld", static_cast<long long>(m.body));
    }
    std::printf("\n");
  }
  report_run(s, res);
  return res.all_done ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) {
    usage();
    return 1;
  }
  std::printf("wfd_sim: problem=%s n=%d crashes=%d scheduler=%s seed=%llu\n",
              a.problem.c_str(), a.n, a.crashes, a.scheduler.c_str(),
              static_cast<unsigned long long>(a.seed));
  if (a.problem == "consensus") return run_consensus(a);
  if (a.problem == "qc") return run_qc(a);
  if (a.problem == "nbac") return run_nbac(a);
  if (a.problem == "register") return run_register(a);
  if (a.problem == "abcast") return run_abcast(a);
  std::fprintf(stderr, "unknown problem: %s\n", a.problem.c_str());
  usage();
  return 1;
}
