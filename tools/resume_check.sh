#!/bin/sh
# Resume-equivalence lane for wfd_check (driven by ctest, see
# tools/CMakeLists.txt). Three claims:
#
#  1. Clean exhaustive scenario (register n=3): a search split across
#     --budget-states / --save-state / --resume invocations must end
#     with the same states, runs, steps and coverage verdict as the
#     single-shot run. The looped run uses --threads=4 against a
#     single-threaded single-shot, so this also pins that snapshots
#     written by a parallel search resume to serial-identical results.
#  2. Seeded-bug scenario: the looped search must find the same
#     violation (property and shrunk decision log) as the single-shot
#     run.
#  3. A snapshot resumed against a different scenario must be rejected
#     with exit 2; a corrupt snapshot must be rejected with exit 1.
#
# Usage: resume_check.sh /path/to/wfd_check
set -u

CHECK=${1:?usage: resume_check.sh /path/to/wfd_check}
DIR=$(mktemp -d) || exit 1
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# jstr JSON KEY -> string field value; jnum JSON KEY -> numeric field.
jstr() {
  printf '%s' "$1" | sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p"
}
jnum() {
  printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\)[,}].*/\1/p"
}

# run_loop SNAPSHOT BUDGET ARGS... -> prints the final JSON; exits
# nonzero via fail when the loop misbehaves. Loops while wfd_check
# reports exit 4 (budget exhausted, frontier saved).
run_loop() {
  snap=$1
  budget=$2
  shift 2
  out=$("$CHECK" "$@" --budget-states="$budget" --save-state="$snap") ||
    rc=$?
  rc=${rc:-0}
  i=0
  while [ "$rc" -eq 4 ]; do
    i=$((i + 1))
    [ "$i" -le 200 ] || fail "save/resume loop did not converge"
    rc=0
    out=$("$CHECK" "$@" --budget-states="$budget" --save-state="$snap" \
      --resume="$snap") || rc=$?
  done
  [ "$i" -ge 1 ] || fail "loop never resumed — budget $budget too large?"
  LOOP_RC=$rc
  LOOP_OUT=$out
}

REG_ARGS="--problem=register --n=3 --exhaustive --fd=static --reg-ops=1
          --reg-readers=1 --depth=20 --json"
BUG_ARGS="--problem=consensus-bug --n=3 --exhaustive --depth=30 --json"

# --- 1. clean scenario: split == single-shot -------------------------------
single=$("$CHECK" $REG_ARGS) || fail "single-shot register run exited $?"
rc=
run_loop "$DIR/reg.wfds" 5000 $REG_ARGS --threads=4
[ "$LOOP_RC" -eq 0 ] || fail "register loop exited $LOOP_RC"
for key in states runs steps; do
  a=$(jnum "$single" "$key")
  b=$(jnum "$LOOP_OUT" "$key")
  [ -n "$a" ] && [ "$a" = "$b" ] ||
    fail "register $key: single-shot=$a looped=$b"
done
a=$(jstr "$single" coverage)
b=$(jstr "$LOOP_OUT" coverage)
[ -n "$a" ] && [ "$a" = "$b" ] || fail "register coverage: $a vs $b"

# --- 2. seeded bug: same violation either way ------------------------------
bug_single=$("$CHECK" $BUG_ARGS)
[ $? -eq 3 ] || fail "single-shot seeded-bug run did not exit 3"
rc=
run_loop "$DIR/bug.wfds" 5 $BUG_ARGS
[ "$LOOP_RC" -eq 3 ] || fail "seeded-bug loop exited $LOOP_RC, want 3"
for key in property decisions; do
  a=$(jstr "$bug_single" "$key")
  b=$(jstr "$LOOP_OUT" "$key")
  [ -n "$a" ] && [ "$a" = "$b" ] ||
    fail "seeded-bug $key: single-shot=$a looped=$b"
done

# --- 3. mismatched / corrupt snapshots are rejected ------------------------
"$CHECK" --problem=consensus --n=3 --exhaustive --depth=20 \
  --resume="$DIR/reg.wfds" >/dev/null 2>&1
[ $? -eq 2 ] || fail "mismatched-scenario resume did not exit 2"
printf 'not a snapshot\n' >"$DIR/corrupt.wfds"
"$CHECK" $REG_ARGS --resume="$DIR/corrupt.wfds" >/dev/null 2>&1
[ $? -eq 1 ] || fail "corrupt snapshot resume did not exit 1"

echo "resume equivalence OK"
