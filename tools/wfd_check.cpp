// wfd_check — systematic schedule exploration and property checking.
//
// Drives small instances of the library's protocols through every
// source of nondeterminism (schedules, detector histories, crash times)
// and checks the specification clauses on each run. Three modes:
//
//   wfd_check --problem=consensus --n=3 --exhaustive --depth=40
//       Wave-scheduled exhaustive search over the whole choice tree
//       (DPOR + sleep sets + fingerprints; --threads=N workers with
//       results identical for every N; --max-states budget).
//
//   wfd_check --problem=qc --n=3 --campaign --runs=20000 --threads=8
//       Parallel randomized campaign: recorded random walks plus a
//       shared exhaustive frontier search.
//
//   wfd_check --replay=cex.wfdr
//       Deterministic re-execution of a saved counterexample.
//
// All scenario and search knobs are SearchConfig flags
// (explore/search_config.h) — one parser shared with the campaign
// driver and the snapshot header; this tool adds only mode and output
// flags on top.
//
// A found safety violation is shrunk to a minimal decision sequence,
// printed, optionally saved with --save=FILE, and exits with status 3;
// a clean exploration exits 0; usage or setup errors exit 1; a
// problem/mode combination the scenario registry does not support exits
// 2 (never a silent fallback to another mode).
//
// --liveness=<clause> switches the exhaustive search from bounded
// safety to liveness: the explorer records the state graph it visits
// and, once the tree is exhausted, searches it for a fair cycle that
// avoids the clause's goal (explore/liveness.h). A found lasso is
// shrunk (stem and loop separately), printed, saved as a replay file
// with a loop= line, and exits 3; --replay on such a file re-validates
// the fair cycle deterministically. A clean exhaust reports the graph
// size and "no fair cycle avoids the goal".
//
// Exhaustive mode defaults to DPOR plus module-state fingerprints and
// reports its coverage honestly: "complete" (every branch visited),
// "modulo-fingerprints" (every branch visited or cut at a state whose
// subtree was explored from an equivalent fingerprint), or "budget".
//
// Budget-capped searches are resumable: --save-state=FILE persists the
// search frontier + visited fingerprints on exit, --resume=FILE
// continues from such a snapshot (a snapshot from a different scenario
// or search configuration is rejected with exit 2), and
// --budget-states=N caps the NEW states of this invocation, exiting 4
// when the budget ran out with frontier left. Scripts keep re-invoking
// `wfd_check ... --budget-states=N --save-state=s.wfds --resume=s.wfds`
// while the exit status is 4, until the verdict is a violation (3) or
// coverage=complete / modulo-fingerprints (0); see tools/resume_check.sh.
// The split search visits exactly the states one uninterrupted run
// would — as does a --threads=N run versus a serial one.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>

#include "explore/campaign.h"
#include "explore/explorer.h"
#include "explore/replay_io.h"
#include "explore/scenario.h"
#include "explore/search_config.h"
#include "explore/shrink.h"

using namespace wfd;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitUsage = 1;
constexpr int kExitUnsupported = 2;
constexpr int kExitViolation = 3;
constexpr int kExitBudget = 4;
/// The fair-cycle search found a witness SCC but could not pin its lasso
/// by replay probing — a graph/scenario mismatch (internal error), never
/// a sound "no fair cycle" verdict.
constexpr int kExitConcretize = 5;

struct Args {
  /// Scenario + search knobs: parsed exclusively by apply_cli_flag.
  explore::SearchConfig cfg;
  enum class Mode { kExhaustive, kCampaign, kReplay } mode = Mode::kExhaustive;
  std::string replay_path;
  /// --save: write a found counterexample as a replay file.
  std::string save_path;
  /// 0 = no deadline. Otherwise a watchdog converts a still-running
  /// exhaustive search into a cooperative cancel after this many
  /// milliseconds: partial report, frontier saved (with --save-state),
  /// exit 4 — a hung lane becomes a budget-style verdict, not a timeout.
  std::uint64_t deadline_ms = 0;
  bool json = false;
};

void usage() {
  std::string problems;
  for (const explore::ProblemSpec& p :
       explore::ScenarioFactory::problems()) {
    if (!problems.empty()) problems += "|";
    problems += p.name;
  }
  std::printf(
      "usage: wfd_check [--exhaustive | --campaign | --replay=FILE]\n"
      "                 [--save=FILE] [--deadline-ms=N] [--json]\n"
      "                 [scenario/search flags below]\n"
      "\n"
      "problems: %s\n"
      "\n"
      "scenario + search flags (shared with every exploration driver):\n"
      "%s"
      "\n"
      "--crash=explore makes crash timing a per-step exploration choice\n"
      "(--crashes becomes the injection budget, default 1); --loss gives\n"
      "the adversary per-link drop/duplicate budgets; --fd=adversarial\n"
      "turns every detector query into a worst-case choice against the\n"
      "evolving failure pattern. --deadline-ms converts a long exhaustive\n"
      "run into a cooperative cancel: partial report, frontier saved with\n"
      "--save-state, exit 4. --liveness=<clause> checks <>[]goal instead\n"
      "of bounded safety: after exhausting the tree the explored state\n"
      "graph is searched for a fair goal-avoiding cycle, reported as a\n"
      "replayable (and shrinkable) stem+loop lasso.\n"
      "\n"
      "--threads=N runs the wave-scheduled exhaustive search on N worker\n"
      "threads (results are identical for every N); in campaign mode it\n"
      "is the random-walk worker count. --save-state persists a\n"
      "resumable snapshot of an exhaustive search; --resume continues\n"
      "from one; --budget-states=N caps the NEW states explored this\n"
      "invocation, so scripts can loop save/resume until coverage is\n"
      "complete (--max-states stays the cap on the cumulative total).\n"
      "\n"
      "exit status: 0 no violation, 3 violation found, 1 usage error,\n"
      "             2 problem/mode combination not supported (or a\n"
      "               resume snapshot from a different scenario),\n"
      "             4 state budget exhausted, frontier saved,\n"
      "             5 fair-cycle witness found but its lasso could not\n"
      "               be concretized (internal error; diagnostic on\n"
      "               stderr)\n",
      problems.c_str(), explore::cli_flags_help().c_str());
}

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") return false;
    if (arg == "--exhaustive") {
      a.mode = Args::Mode::kExhaustive;
      continue;
    }
    if (arg == "--campaign") {
      a.mode = Args::Mode::kCampaign;
      continue;
    }
    if (auto v = val("replay")) {
      a.mode = Args::Mode::kReplay;
      a.replay_path = *v;
      continue;
    }
    if (auto v = val("save")) {
      a.save_path = *v;
      continue;
    }
    if (auto v = val("deadline-ms")) {
      a.deadline_ms = std::strtoull(v->c_str(), nullptr, 10);
      if (a.deadline_ms == 0) return false;
      continue;
    }
    if (arg == "--json") {
      a.json = true;
      continue;
    }
    switch (explore::apply_cli_flag(a.cfg, arg)) {
      case explore::CliResult::kApplied:
        break;
      case explore::CliResult::kBadValue:
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        return false;
      case explore::CliResult::kUnknown:
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        return false;
    }
  }
  // Injected crashes are bounded by --crashes; exploring with a zero
  // budget would silently degenerate to the crash-free tree.
  if (a.cfg.scenario.crash_mode == "explore" && a.cfg.scenario.crashes == 0) {
    a.cfg.scenario.crashes = 1;
  }
  return true;
}

std::string decisions_to_text(const sim::DecisionLog& log) {
  std::string out;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(log[i]);
  }
  return out;
}

/// A liveness lasso: shrink (stem + loop), print, optionally save as a
/// replay file with a loop= line. Returns the process exit status.
/// Builds its own scenario with a widened horizon — the lasso may run
/// past the search depth (probing already did), and under the liveness
/// rules the horizon changes no transition.
int report_lasso(const Args& a, explore::Counterexample cex,
                 const char* how) {
  explore::ScenarioOptions wide = a.cfg.scenario;
  wide.max_steps =
      std::max<std::uint64_t>(wide.max_steps,
                              cex.decisions.size() + cex.loop.size() + 8);
  const explore::ScenarioBuilder build =
      explore::ScenarioFactory(wide).builder();
  std::uint64_t stem_from = 0;
  std::uint64_t loop_from = 0;
  if (a.cfg.shrink) {
    explore::ShrinkLassoResult s =
        explore::shrink_lasso(build, cex.decisions, cex.loop);
    stem_from = s.original_stem;
    loop_from = s.original_loop;
    cex.decisions = std::move(s.stem);
    cex.loop = std::move(s.loop);
  }
  if (a.json) {
    std::printf(
        "{\"verdict\":\"violation\",\"property\":\"%s\",\"message\":\"%s\","
        "\"mode\":\"%s\",\"decisions\":\"%s\",\"loop\":\"%s\","
        "\"stem_shrunk_from\":%llu,\"loop_shrunk_from\":%llu}\n",
        cex.violation.property.c_str(), cex.violation.message.c_str(), how,
        decisions_to_text(cex.decisions).c_str(),
        decisions_to_text(cex.loop).c_str(),
        static_cast<unsigned long long>(stem_from),
        static_cast<unsigned long long>(loop_from));
  } else {
    std::printf("VIOLATION of %s (%s)\n", cex.violation.property.c_str(),
                how);
    std::printf("  %s\n", cex.violation.message.c_str());
    if (stem_from + loop_from != 0) {
      std::printf("  shrunk: stem %llu -> %llu, loop %llu -> %llu decisions\n",
                  static_cast<unsigned long long>(stem_from),
                  static_cast<unsigned long long>(cex.decisions.size()),
                  static_cast<unsigned long long>(loop_from),
                  static_cast<unsigned long long>(cex.loop.size()));
    }
    std::printf("  stem: [%s]\n", decisions_to_text(cex.decisions).c_str());
    std::printf("  loop: [%s]\n", decisions_to_text(cex.loop).c_str());
  }
  if (!a.save_path.empty()) {
    explore::ReplayFile rf;
    rf.scenario = a.cfg.scenario;
    rf.decisions = cex.decisions;
    rf.loop = cex.loop;
    rf.note = cex.violation.property + ": " + cex.violation.message;
    if (!explore::save_replay(a.save_path, rf)) {
      std::fprintf(stderr, "cannot write %s\n", a.save_path.c_str());
      return kExitUsage;
    }
    if (!a.json) {
      std::printf("  saved: %s (re-run with --replay=%s)\n",
                  a.save_path.c_str(), a.save_path.c_str());
    }
  }
  return kExitViolation;
}

/// Shrink, print, optionally save. Returns the process exit status.
int report_cex(const Args& a, const explore::ScenarioBuilder& build,
               explore::Counterexample cex, const char* how,
               bool reshrink) {
  std::uint64_t shrunk_from = 0;
  if (reshrink && a.cfg.shrink) {
    const explore::ShrinkResult s =
        explore::shrink(build, cex.decisions, cex.violation.property);
    shrunk_from = s.original_size;
    cex.decisions = s.decisions;
  }
  if (a.json) {
    std::printf(
        "{\"verdict\":\"violation\",\"property\":\"%s\",\"message\":\"%s\","
        "\"mode\":\"%s\",\"decisions\":\"%s\",\"shrunk_from\":%llu}\n",
        cex.violation.property.c_str(), cex.violation.message.c_str(), how,
        decisions_to_text(cex.decisions).c_str(),
        static_cast<unsigned long long>(shrunk_from));
  } else {
    std::printf("VIOLATION of %s (%s)\n", cex.violation.property.c_str(),
                how);
    std::printf("  %s\n", cex.violation.message.c_str());
    if (shrunk_from != 0) {
      std::printf("  shrunk: %llu -> %llu decisions\n",
                  static_cast<unsigned long long>(shrunk_from),
                  static_cast<unsigned long long>(cex.decisions.size()));
    }
    std::printf("  decisions: [%s]\n",
                decisions_to_text(cex.decisions).c_str());
  }
  if (!a.save_path.empty()) {
    explore::ReplayFile rf;
    rf.scenario = a.cfg.scenario;
    rf.decisions = cex.decisions;
    rf.note = cex.violation.property + ": " + cex.violation.message;
    if (!explore::save_replay(a.save_path, rf)) {
      std::fprintf(stderr, "cannot write %s\n", a.save_path.c_str());
      return kExitUsage;
    }
    if (!a.json) {
      std::printf("  saved: %s (re-run with --replay=%s)\n",
                  a.save_path.c_str(), a.save_path.c_str());
    }
  }
  return kExitViolation;
}

std::string conservative_to_json(const std::set<std::string>& ids) {
  std::string out = "[";
  for (const std::string& id : ids) {
    if (out.size() > 1) out += ",";
    out += "\"" + id + "\"";
  }
  return out + "]";
}

int run_exhaustive(const Args& a) {
  const explore::ScenarioBuilder build =
      explore::ScenarioFactory(a.cfg.scenario).builder();
  explore::SearchConfig cfg = a.cfg;

  // --deadline-ms: arm a watchdog that flips the explorer's cooperative
  // cancel flag, so a search that would outlive the deadline stops at a
  // clean wave boundary (partial stats, resumable frontier) instead of
  // hanging its lane.
  std::atomic<bool> cancel{false};
  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  std::thread watchdog;
  if (a.deadline_ms > 0) {
    cfg.cancel = &cancel;
    watchdog = std::thread([&a, &cancel, &mu, &cv, &finished] {
      std::unique_lock<std::mutex> lock(mu);
      const bool done = cv.wait_for(
          lock, std::chrono::milliseconds(a.deadline_ms),
          [&finished] { return finished; });
      if (!done) cancel.store(true, std::memory_order_relaxed);
    });
  }
  explore::Explorer ex(build, cfg);
  const explore::ExploreReport rep = ex.run();
  if (watchdog.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      finished = true;
    }
    cv.notify_all();
    watchdog.join();
  }
  if (!rep.resume_error.empty()) {
    std::fprintf(stderr, "cannot resume %s: %s\n", cfg.resume_path.c_str(),
                 rep.resume_error.c_str());
    // Incompatible snapshot (different scenario / search configuration)
    // is the "combination not supported" case; corrupt or unreadable
    // input is a plain usage error.
    return rep.resume_rejected ? kExitUnsupported : kExitUsage;
  }
  const auto& st = rep.stats;
  const std::string cov = explore::coverage_name(explore::coverage(st));
  // A run that cannot persist its frontier must not report success, or
  // a save/resume loop would silently restart from scratch.
  const bool save_failed = !rep.save_error.empty();
  if (save_failed) {
    std::fprintf(stderr, "cannot save state: %s\n", rep.save_error.c_str());
  }
  // A concretization failure poisons the liveness verdict: the graph
  // says a fair cycle exists but no replay pins it, so neither "lasso"
  // nor "no fair cycle" would be honest. Diagnostic to stderr, own exit
  // code.
  if (!rep.lasso_error.empty()) {
    std::fprintf(stderr, "lasso concretization failed: %s\n",
                 rep.lasso_error.c_str());
    return kExitConcretize;
  }
  // A deadline cancel is a budget-style verdict: the search stopped at a
  // clean wave boundary with frontier left, so the lane's save/resume
  // loop treats it exactly like a spent state budget.
  const bool deadline_hit = rep.cancelled && !rep.cex.has_value();
  const bool budget_left =
      (cfg.budget_states != 0 || deadline_hit) && !st.exhausted &&
      !rep.cex.has_value();
  if (a.json && !rep.cex.has_value()) {
    std::string liveness_json;
    if (st.liveness) {
      liveness_json = ",\"graph_states\":" + std::to_string(st.graph_states) +
                      ",\"graph_edges\":" + std::to_string(st.graph_edges) +
                      ",\"graph_truncated\":" +
                      std::to_string(st.graph_truncated) +
                      ",\"fair_cycle_checked\":" +
                      (rep.fair_cycle_checked ? "true" : "false");
    }
    std::printf(
        "{\"verdict\":\"clean\",\"mode\":\"exhaustive\",\"states\":%llu,"
        "\"runs\":%llu,\"steps\":%llu,\"sleep_skips\":%llu,"
        "\"fp_prunes\":%llu,\"hb_races\":%llu,\"backtrack_points\":%llu,"
        "\"commute_skips\":%llu,\"injected_crashes\":%llu,"
        "\"injected_drops\":%llu,\"injected_dups\":%llu,"
        "\"conservative_payloads\":%s,"
        "\"status\":\"%s\",\"coverage\":\"%s\","
        "\"resumed\":%s,\"resume_generation\":%llu,"
        "\"config\":%s%s}\n",
        static_cast<unsigned long long>(st.nodes),
        static_cast<unsigned long long>(st.runs),
        static_cast<unsigned long long>(st.steps),
        static_cast<unsigned long long>(st.sleep_skips),
        static_cast<unsigned long long>(st.fp_prunes),
        static_cast<unsigned long long>(st.hb_races),
        static_cast<unsigned long long>(st.backtrack_points),
        static_cast<unsigned long long>(st.commute_skips),
        static_cast<unsigned long long>(st.injected_crashes),
        static_cast<unsigned long long>(st.injected_drops),
        static_cast<unsigned long long>(st.injected_dups),
        conservative_to_json(rep.conservative_payloads).c_str(),
        st.exhausted   ? "exhausted"
        : deadline_hit ? "deadline"
                       : "budget",
        cov.c_str(), rep.resumed ? "true" : "false",
        static_cast<unsigned long long>(rep.resume_generation),
        explore::config_to_json(cfg).c_str(), liveness_json.c_str());
    if (save_failed) return kExitUsage;
    return budget_left ? kExitBudget : kExitClean;
  }
  if (!a.json) {
    if (rep.resumed) {
      std::printf("resumed from %s (generation %llu)\n",
                  cfg.resume_path.c_str(),
                  static_cast<unsigned long long>(rep.resume_generation));
    }
    std::printf(
        "explored %llu states across %llu runs (%llu steps, "
        "%llu sleep-set skips, %llu fp prunes, %llu hb races, "
        "%llu backtrack points, %llu commute skips): %s [coverage: %s]\n",
        static_cast<unsigned long long>(st.nodes),
        static_cast<unsigned long long>(st.runs),
        static_cast<unsigned long long>(st.steps),
        static_cast<unsigned long long>(st.sleep_skips),
        static_cast<unsigned long long>(st.fp_prunes),
        static_cast<unsigned long long>(st.hb_races),
        static_cast<unsigned long long>(st.backtrack_points),
        static_cast<unsigned long long>(st.commute_skips),
        st.exhausted          ? "tree exhausted"
        : rep.cex.has_value() ? "stopped at violation"
        : deadline_hit        ? "deadline reached"
                              : "budget reached",
        cov.c_str());
    if (st.injected_crashes + st.injected_drops + st.injected_dups != 0) {
      std::printf(
          "injected faults: %llu crashes, %llu drops, %llu duplicates\n",
          static_cast<unsigned long long>(st.injected_crashes),
          static_cast<unsigned long long>(st.injected_drops),
          static_cast<unsigned long long>(st.injected_dups));
    }
    if (!rep.conservative_payloads.empty()) {
      std::printf("conservative payloads (no commutativity audit):");
      for (const std::string& id : rep.conservative_payloads) {
        std::printf(" %s", id.c_str());
      }
      std::printf("\n");
    }
    if (st.liveness) {
      std::printf("state graph: %llu states, %llu edges, %llu truncated\n",
                  static_cast<unsigned long long>(st.graph_states),
                  static_cast<unsigned long long>(st.graph_edges),
                  static_cast<unsigned long long>(st.graph_truncated));
    }
  }
  if (rep.cex.has_value()) {
    if (!rep.cex->loop.empty()) {
      return report_lasso(a, *rep.cex, "exhaustive");
    }
    return report_cex(a, build, *rep.cex, "exhaustive", /*reshrink=*/true);
  }
  if (rep.fair_cycle_checked && !a.json) {
    std::printf("no fair cycle avoids the goal (liveness=%s holds on the "
                "explored graph)\n",
                a.cfg.scenario.liveness.c_str());
  }
  if (!cfg.save_path.empty() && !save_failed) {
    std::printf("state saved: %s (continue with --resume=%s)\n",
                cfg.save_path.c_str(), cfg.save_path.c_str());
  }
  std::printf("no violation found%s\n",
              !budget_left   ? ""
              : deadline_hit ? " yet (deadline reached, partial results)"
                             : " yet (budget exhausted, frontier saved)");
  if (save_failed) return kExitUsage;
  return budget_left ? kExitBudget : kExitClean;
}

int run_campaign_mode(const Args& a) {
  const explore::ScenarioBuilder build =
      explore::ScenarioFactory(a.cfg.scenario).builder();
  explore::SearchConfig cfg = a.cfg;
  // The frontier search only makes sense for problems whose runs halt;
  // on service scenarios (never-done modules, e.g. omega-impl) a DFS
  // never reaches a terminal state and would just burn its whole
  // budget.
  if (!explore::ScenarioFactory::supports_mode(a.cfg.scenario.problem,
                                               "exhaustive")) {
    cfg.frontier_workers = 0;
  }
  const explore::CampaignReport rep = explore::run_campaign(build, cfg);
  if (a.json && !rep.cex.has_value()) {
    std::printf(
        "{\"verdict\":\"clean\",\"mode\":\"campaign\",\"runs\":%llu,"
        "\"steps\":%llu,\"frontier_states\":%llu,"
        "\"liveness_suspects\":%llu}\n",
        static_cast<unsigned long long>(rep.runs),
        static_cast<unsigned long long>(rep.steps),
        static_cast<unsigned long long>(rep.nodes),
        static_cast<unsigned long long>(rep.liveness_suspects));
    return kExitClean;
  }
  std::printf(
      "campaign: %llu random runs, %llu frontier states, %llu steps, "
      "%llu liveness suspects\n",
      static_cast<unsigned long long>(rep.runs),
      static_cast<unsigned long long>(rep.nodes),
      static_cast<unsigned long long>(rep.steps),
      static_cast<unsigned long long>(rep.liveness_suspects));
  if (rep.cex.has_value()) {
    // The campaign already shrank it (when enabled).
    return report_cex(a, build, *rep.cex, "campaign", /*reshrink=*/false);
  }
  std::printf("no violation found\n");
  return kExitClean;
}

int run_replay_mode(const Args& a) {
  std::string error;
  const auto rf = explore::load_replay(a.replay_path, &error);
  if (!rf.has_value()) {
    std::fprintf(stderr, "bad replay file: %s\n", error.c_str());
    return kExitUsage;
  }
  if (!rf->loop.empty()) {
    // Lasso replay: re-validate the fair cycle rather than just re-run
    // the stem. The saved file keeps the scenario as searched; the
    // horizon is widened here exactly as the probe that found the lasso
    // widened it.
    explore::ScenarioOptions wide = rf->scenario;
    wide.max_steps = std::max<std::uint64_t>(
        wide.max_steps, rf->decisions.size() + rf->loop.size() + 8);
    const explore::ScenarioBuilder build =
        explore::ScenarioFactory(wide).builder();
    const explore::LassoOutcome out =
        explore::run_lasso(build, rf->decisions, rf->loop);
    if (out.ok) {
      if (a.json) {
        std::printf(
            "{\"verdict\":\"violation\",\"property\":\"liveness(%s)\","
            "\"mode\":\"lasso-replay\",\"stem_steps\":%llu,"
            "\"loop_steps\":%llu}\n",
            rf->scenario.liveness.c_str(),
            static_cast<unsigned long long>(out.stem_steps),
            static_cast<unsigned long long>(out.loop_steps));
      } else {
        std::printf(
            "lasso confirmed: fair %llu-step loop entered after %llu steps, "
            "goal liveness(%s) never converges\n",
            static_cast<unsigned long long>(out.loop_steps),
            static_cast<unsigned long long>(out.stem_steps),
            rf->scenario.liveness.c_str());
      }
      return kExitViolation;
    }
    if (out.violation.has_value()) {
      std::printf("VIOLATION of %s (lasso replay hit a safety violation)\n",
                  out.violation->property.c_str());
      std::printf("  %s\n", out.violation->message.c_str());
      return kExitViolation;
    }
    std::printf("lasso NOT confirmed: %s\n", out.reason.c_str());
    return kExitClean;
  }
  const explore::ScenarioBuilder build =
      explore::ScenarioFactory(rf->scenario).builder();
  const explore::ReplayOutcome out =
      explore::run_replay(build, rf->decisions);
  if (out.violation.has_value()) {
    if (a.json) {
      std::printf(
          "{\"verdict\":\"violation\",\"property\":\"%s\",\"message\":\"%s\","
          "\"mode\":\"replay\",\"steps\":%llu}\n",
          out.violation->property.c_str(), out.violation->message.c_str(),
          static_cast<unsigned long long>(out.steps));
    } else {
      std::printf("VIOLATION of %s (replay, %llu steps)\n",
                  out.violation->property.c_str(),
                  static_cast<unsigned long long>(out.steps));
      std::printf("  %s\n", out.violation->message.c_str());
    }
    return kExitViolation;
  }
  std::printf("replay clean: %llu steps, all done: %s\n",
              static_cast<unsigned long long>(out.steps),
              out.all_done ? "yes" : "no");
  return kExitClean;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) {
    usage();
    return kExitUsage;
  }
  if (a.mode != Args::Mode::kReplay) {
    const std::string why = explore::validate(a.cfg);
    if (!why.empty()) {
      std::fprintf(stderr, "invalid configuration: %s\n", why.c_str());
      return kExitUsage;
    }
  }
  if (a.mode != Args::Mode::kExhaustive &&
      (!a.cfg.save_path.empty() || !a.cfg.resume_path.empty() ||
       a.cfg.budget_states != 0 || a.deadline_ms != 0)) {
    std::fprintf(stderr,
                 "--save-state/--resume/--budget-states/--deadline-ms "
                 "require --exhaustive\n");
    return kExitUsage;
  }
  // Every registered problem/mode combination must be declared supported;
  // refusing here (exit 2) beats silently running a different mode.
  const char* mode_name = a.mode == Args::Mode::kExhaustive ? "exhaustive"
                          : a.mode == Args::Mode::kCampaign ? "campaign"
                                                            : "replay";
  if (a.mode != Args::Mode::kReplay &&
      !explore::ScenarioFactory::supports_mode(a.cfg.scenario.problem,
                                               mode_name)) {
    std::fprintf(stderr, "problem '%s' does not support --%s\n",
                 a.cfg.scenario.problem.c_str(), mode_name);
    return kExitUnsupported;
  }
  switch (a.mode) {
    case Args::Mode::kExhaustive:
      return run_exhaustive(a);
    case Args::Mode::kCampaign:
      return run_campaign_mode(a);
    case Args::Mode::kReplay:
      return run_replay_mode(a);
  }
  return kExitUsage;
}
