// wfd_check — systematic schedule exploration and property checking.
//
// Drives small instances of the library's protocols through every
// source of nondeterminism (schedules, detector histories, crash times)
// and checks the specification clauses on each run. Three modes:
//
//   wfd_check --problem=consensus --n=3 --exhaustive --depth=40
//       Bounded DFS over the whole choice tree (sleep-set and
//       oldest-per-channel reductions; --max-states budget).
//
//   wfd_check --problem=qc --n=3 --campaign --runs=20000 --threads=8
//       Parallel randomized campaign: recorded random walks plus
//       randomized-order DFS frontier workers.
//
//   wfd_check --replay=cex.wfdr
//       Deterministic re-execution of a saved counterexample.
//
// A found safety violation is shrunk to a minimal decision sequence,
// printed, optionally saved with --save=FILE, and exits with status 3;
// a clean exploration exits 0; usage or setup errors exit 1; a
// problem/mode combination the scenario registry does not support exits
// 2 (never a silent fallback to another mode).
//
// Exhaustive mode defaults to DPOR plus module-state fingerprints and
// reports its coverage honestly: "complete" (every branch visited),
// "modulo-fingerprints" (every branch visited or cut at a state whose
// subtree was explored from an equivalent fingerprint), or "budget".
//
// Budget-capped searches are resumable: --save-state=FILE persists the
// search frontier + visited fingerprints on exit, --resume=FILE
// continues from such a snapshot (a snapshot from a different scenario
// or explorer configuration is rejected with exit 2), and
// --budget-states=N caps the NEW states of this invocation, exiting 4
// when the budget ran out with frontier left. Scripts keep re-invoking
// `wfd_check ... --budget-states=N --save-state=s.wfds --resume=s.wfds`
// while the exit status is 4, until the verdict is a violation (3) or
// coverage=complete / modulo-fingerprints (0); see tools/resume_check.sh.
// The split search visits exactly the states one uninterrupted run
// would.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>

#include "explore/campaign.h"
#include "explore/explorer.h"
#include "explore/replay_io.h"
#include "explore/scenario.h"
#include "explore/shrink.h"

using namespace wfd;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitUsage = 1;
constexpr int kExitUnsupported = 2;
constexpr int kExitViolation = 3;
constexpr int kExitBudget = 4;

struct Args {
  explore::ScenarioOptions scenario;
  enum class Mode { kExhaustive, kCampaign, kReplay } mode = Mode::kExhaustive;
  std::string replay_path;
  std::string save_path;
  std::string save_state_path;
  std::string resume_path;
  std::uint64_t budget_states = 0;
  /// 0 = no deadline. Otherwise a watchdog converts a still-running
  /// exhaustive search into a cooperative cancel after this many
  /// milliseconds: partial report, frontier saved (with --save-state),
  /// exit 4 — a hung lane becomes a budget-style verdict, not a timeout.
  std::uint64_t deadline_ms = 0;
  std::uint64_t max_states = 100000;
  std::uint64_t runs = 10000;
  int threads = 4;
  int frontier = 2;
  explore::Reduction reduction = explore::Reduction::kDpor;
  explore::Dependence dependence = explore::Dependence::kContent;
  bool state_fingerprints = true;
  bool shrink = true;
  bool json = false;
};

void usage() {
  std::string problems;
  for (const explore::ProblemSpec& p :
       explore::ScenarioFactory::problems()) {
    if (!problems.empty()) problems += "|";
    problems += p.name;
  }
  std::printf(
      "usage: wfd_check [--problem=%s]\n"
      "                 [--n=N] [--crashes=K] [--crash-time=T]\n"
      "                 [--crash=script|explore] [--loss=drop:N[,dup:M]]\n"
      "                 [--depth=T] [--seed=S] [--stab=T]\n"
      "                 [--fd=flap|static|adversarial] [--nbac-no-voter=P]\n"
      "                 [--reg-ops=N] [--reg-readers=N] [--abcast-senders=N]\n"
      "                 [--exhaustive | --campaign | --replay=FILE]\n"
      "                 [--max-states=N] [--runs=N] [--threads=N]\n"
      "                 [--frontier=N] [--reduction=dpor|sleep-sets|none]\n"
      "                 [--dep=content|process]\n"
      "                 [--no-fingerprints] [--no-shrink]\n"
      "                 [--no-lambda] [--all-pending] [--save=FILE]\n"
      "                 [--save-state=FILE] [--resume=FILE]\n"
      "                 [--budget-states=N] [--deadline-ms=N] [--json]\n"
      "\n"
      "--crash=explore makes crash timing a per-step exploration choice\n"
      "(--crashes becomes the injection budget, default 1); --loss gives\n"
      "the adversary per-link drop/duplicate budgets; --fd=adversarial\n"
      "turns every detector query into a worst-case choice against the\n"
      "evolving failure pattern. --deadline-ms converts a long exhaustive\n"
      "run into a cooperative cancel: partial report, frontier saved with\n"
      "--save-state, exit 4.\n"
      "\n"
      "--save-state persists a resumable snapshot of an exhaustive\n"
      "search (frontier + visited fingerprints); --resume continues\n"
      "from one; --budget-states=N caps the NEW states explored this\n"
      "invocation, so scripts can loop save/resume until coverage is\n"
      "complete (--max-states stays the cap on the cumulative total).\n"
      "\n"
      "exit status: 0 no violation, 3 violation found, 1 usage error,\n"
      "             2 problem/mode combination not supported (or a\n"
      "               resume snapshot from a different scenario),\n"
      "             4 state budget exhausted, frontier saved\n",
      problems.c_str());
}

/// --loss=drop:N[,dup:M] (either component, any order).
bool parse_loss(const std::string& v, explore::ScenarioOptions& s) {
  std::size_t start = 0;
  while (start < v.size()) {
    const std::size_t comma = v.find(',', start);
    const std::string part =
        v.substr(start, comma == std::string::npos ? std::string::npos
                                                   : comma - start);
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    const std::string key = part.substr(0, colon);
    const int budget = std::atoi(part.substr(colon + 1).c_str());
    if (budget < 1) return false;
    if (key == "drop") {
      s.loss_drops = budget;
    } else if (key == "dup") {
      s.loss_dups = budget;
    } else {
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return s.loss_drops > 0 || s.loss_dups > 0;
}

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    explore::ScenarioOptions& s = a.scenario;
    if (arg == "--help" || arg == "-h") return false;
    if (auto v = val("problem")) {
      s.problem = *v;
    } else if (auto v2 = val("n")) {
      s.n = std::atoi(v2->c_str());
    } else if (auto v3 = val("crashes")) {
      s.crashes = std::atoi(v3->c_str());
    } else if (auto v4 = val("crash-time")) {
      s.crash_time = std::strtoull(v4->c_str(), nullptr, 10);
    } else if (auto v5 = val("depth")) {
      s.max_steps = std::strtoull(v5->c_str(), nullptr, 10);
    } else if (auto v6 = val("seed")) {
      s.seed = std::strtoull(v6->c_str(), nullptr, 10);
    } else if (auto v7 = val("stab")) {
      s.stabilization = std::strtoull(v7->c_str(), nullptr, 10);
    } else if (auto v8 = val("fd")) {
      if (*v8 == "adversarial") {
        s.fd_adversarial = true;
        s.fd_per_query = true;  // Forced by the adversary anyway.
      } else if (*v8 == "flap" || *v8 == "static") {
        s.fd_adversarial = false;
        s.fd_per_query = (*v8 == "flap");
      } else {
        return false;
      }
    } else if (auto vc = val("crash")) {
      if (*vc != "script" && *vc != "explore") return false;
      s.crash_mode = *vc;
    } else if (auto vl = val("loss")) {
      if (!parse_loss(*vl, s)) return false;
    } else if (auto vdl = val("deadline-ms")) {
      a.deadline_ms = std::strtoull(vdl->c_str(), nullptr, 10);
      if (a.deadline_ms == 0) return false;
    } else if (auto v9 = val("nbac-no-voter")) {
      s.nbac_no_voter = std::atoi(v9->c_str());
    } else if (auto vr = val("reg-ops")) {
      s.reg_ops = std::atoi(vr->c_str());
    } else if (auto vrr = val("reg-readers")) {
      s.reg_readers = std::atoi(vrr->c_str());
    } else if (auto va = val("abcast-senders")) {
      s.abcast_senders = std::atoi(va->c_str());
    } else if (arg == "--exhaustive") {
      a.mode = Args::Mode::kExhaustive;
    } else if (arg == "--campaign") {
      a.mode = Args::Mode::kCampaign;
    } else if (auto v10 = val("replay")) {
      a.mode = Args::Mode::kReplay;
      a.replay_path = *v10;
    } else if (auto v11 = val("save")) {
      a.save_path = *v11;
    } else if (auto vss = val("save-state")) {
      a.save_state_path = *vss;
    } else if (auto vrs = val("resume")) {
      a.resume_path = *vrs;
    } else if (auto vbs = val("budget-states")) {
      a.budget_states = std::strtoull(vbs->c_str(), nullptr, 10);
    } else if (auto v12 = val("max-states")) {
      a.max_states = std::strtoull(v12->c_str(), nullptr, 10);
    } else if (auto v13 = val("runs")) {
      a.runs = std::strtoull(v13->c_str(), nullptr, 10);
    } else if (auto v14 = val("threads")) {
      a.threads = std::atoi(v14->c_str());
    } else if (auto v15 = val("frontier")) {
      a.frontier = std::atoi(v15->c_str());
    } else if (auto vred = val("reduction")) {
      if (*vred == "dpor") {
        a.reduction = explore::Reduction::kDpor;
      } else if (*vred == "sleep-sets") {
        a.reduction = explore::Reduction::kSleepSets;
      } else if (*vred == "none") {
        a.reduction = explore::Reduction::kNone;
      } else {
        return false;
      }
    } else if (auto vdep = val("dep")) {
      if (*vdep == "content") {
        a.dependence = explore::Dependence::kContent;
      } else if (*vdep == "process") {
        a.dependence = explore::Dependence::kProcess;
      } else {
        return false;
      }
    } else if (arg == "--no-fingerprints") {
      a.state_fingerprints = false;
    } else if (arg == "--no-shrink") {
      a.shrink = false;
    } else if (arg == "--no-lambda") {
      a.scenario.lambda_always = false;
    } else if (arg == "--all-pending") {
      a.scenario.oldest_per_channel = false;
    } else if (arg == "--json") {
      a.json = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  // Injected crashes are bounded by --crashes; exploring with a zero
  // budget would silently degenerate to the crash-free tree.
  if (a.scenario.crash_mode == "explore" && a.scenario.crashes == 0) {
    a.scenario.crashes = 1;
  }
  return true;
}

std::string decisions_to_text(const sim::DecisionLog& log) {
  std::string out;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(log[i]);
  }
  return out;
}

/// Shrink, print, optionally save. Returns the process exit status.
int report_cex(const Args& a, const explore::ScenarioBuilder& build,
               explore::Counterexample cex, const char* how) {
  std::uint64_t shrunk_from = 0;
  if (a.shrink) {
    const explore::ShrinkResult s =
        explore::shrink(build, cex.decisions, cex.violation.property);
    shrunk_from = s.original_size;
    cex.decisions = s.decisions;
  }
  if (a.json) {
    std::printf(
        "{\"verdict\":\"violation\",\"property\":\"%s\",\"message\":\"%s\","
        "\"mode\":\"%s\",\"decisions\":\"%s\",\"shrunk_from\":%llu}\n",
        cex.violation.property.c_str(), cex.violation.message.c_str(), how,
        decisions_to_text(cex.decisions).c_str(),
        static_cast<unsigned long long>(shrunk_from));
  } else {
    std::printf("VIOLATION of %s (%s)\n", cex.violation.property.c_str(),
                how);
    std::printf("  %s\n", cex.violation.message.c_str());
    if (shrunk_from != 0) {
      std::printf("  shrunk: %llu -> %llu decisions\n",
                  static_cast<unsigned long long>(shrunk_from),
                  static_cast<unsigned long long>(cex.decisions.size()));
    }
    std::printf("  decisions: [%s]\n",
                decisions_to_text(cex.decisions).c_str());
  }
  if (!a.save_path.empty()) {
    explore::ReplayFile rf;
    rf.scenario = a.scenario;
    rf.decisions = cex.decisions;
    rf.note = cex.violation.property + ": " + cex.violation.message;
    if (!explore::save_replay(a.save_path, rf)) {
      std::fprintf(stderr, "cannot write %s\n", a.save_path.c_str());
      return kExitUsage;
    }
    if (!a.json) {
      std::printf("  saved: %s (re-run with --replay=%s)\n",
                  a.save_path.c_str(), a.save_path.c_str());
    }
  }
  return kExitViolation;
}

std::string conservative_to_json(const std::set<std::string>& ids) {
  std::string out = "[";
  for (const std::string& id : ids) {
    if (out.size() > 1) out += ",";
    out += "\"" + id + "\"";
  }
  return out + "]";
}

int run_exhaustive(const Args& a) {
  const explore::ScenarioBuilder build =
      explore::ScenarioFactory(a.scenario).builder();
  explore::ExplorerOptions eo;
  eo.max_states = a.max_states;
  eo.reduction = a.reduction;
  eo.dependence = a.dependence;
  eo.state_fingerprints = a.state_fingerprints;
  eo.budget_states = a.budget_states;
  eo.save_path = a.save_state_path;
  eo.resume_path = a.resume_path;
  eo.scenario = a.scenario;

  // --deadline-ms: arm a watchdog that flips the explorer's cooperative
  // cancel flag, so a search that would outlive the deadline stops at a
  // clean run boundary (partial stats, resumable frontier) instead of
  // hanging its lane.
  std::atomic<bool> cancel{false};
  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  std::thread watchdog;
  if (a.deadline_ms > 0) {
    eo.cancel = &cancel;
    watchdog = std::thread([&a, &cancel, &mu, &cv, &finished] {
      std::unique_lock<std::mutex> lock(mu);
      const bool done = cv.wait_for(
          lock, std::chrono::milliseconds(a.deadline_ms),
          [&finished] { return finished; });
      if (!done) cancel.store(true, std::memory_order_relaxed);
    });
  }
  explore::Explorer ex(build, eo);
  const explore::ExploreReport rep = ex.run();
  if (watchdog.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      finished = true;
    }
    cv.notify_all();
    watchdog.join();
  }
  if (!rep.resume_error.empty()) {
    std::fprintf(stderr, "cannot resume %s: %s\n", a.resume_path.c_str(),
                 rep.resume_error.c_str());
    // Incompatible snapshot (different scenario / explorer options) is
    // the "combination not supported" case; corrupt or unreadable input
    // is a plain usage error.
    return rep.resume_rejected ? kExitUnsupported : kExitUsage;
  }
  const auto& st = rep.stats;
  const std::string cov = explore::coverage_name(explore::coverage(st));
  // A run that cannot persist its frontier must not report success, or
  // a save/resume loop would silently restart from scratch.
  const bool save_failed = !rep.save_error.empty();
  if (save_failed) {
    std::fprintf(stderr, "cannot save state: %s\n", rep.save_error.c_str());
  }
  // A deadline cancel is a budget-style verdict: the search stopped at a
  // clean run boundary with frontier left, so the lane's save/resume
  // loop treats it exactly like a spent state budget.
  const bool deadline_hit = rep.cancelled && !rep.cex.has_value();
  const bool budget_left =
      (a.budget_states != 0 || deadline_hit) && !st.exhausted &&
      !rep.cex.has_value();
  if (a.json && !rep.cex.has_value()) {
    std::printf(
        "{\"verdict\":\"clean\",\"mode\":\"exhaustive\",\"states\":%llu,"
        "\"runs\":%llu,\"steps\":%llu,\"sleep_skips\":%llu,"
        "\"fp_prunes\":%llu,\"hb_races\":%llu,\"backtrack_points\":%llu,"
        "\"commute_skips\":%llu,\"injected_crashes\":%llu,"
        "\"injected_drops\":%llu,\"injected_dups\":%llu,"
        "\"conservative_payloads\":%s,"
        "\"status\":\"%s\",\"coverage\":\"%s\","
        "\"resumed\":%s,\"resume_generation\":%llu}\n",
        static_cast<unsigned long long>(st.nodes),
        static_cast<unsigned long long>(st.runs),
        static_cast<unsigned long long>(st.steps),
        static_cast<unsigned long long>(st.sleep_skips),
        static_cast<unsigned long long>(st.fp_prunes),
        static_cast<unsigned long long>(st.hb_races),
        static_cast<unsigned long long>(st.backtrack_points),
        static_cast<unsigned long long>(st.commute_skips),
        static_cast<unsigned long long>(st.injected_crashes),
        static_cast<unsigned long long>(st.injected_drops),
        static_cast<unsigned long long>(st.injected_dups),
        conservative_to_json(rep.conservative_payloads).c_str(),
        st.exhausted   ? "exhausted"
        : deadline_hit ? "deadline"
                       : "budget",
        cov.c_str(), rep.resumed ? "true" : "false",
        static_cast<unsigned long long>(rep.resume_generation));
    if (save_failed) return kExitUsage;
    return budget_left ? kExitBudget : kExitClean;
  }
  if (!a.json) {
    if (rep.resumed) {
      std::printf("resumed from %s (generation %llu)\n",
                  a.resume_path.c_str(),
                  static_cast<unsigned long long>(rep.resume_generation));
    }
    std::printf(
        "explored %llu states across %llu runs (%llu steps, "
        "%llu sleep-set skips, %llu fp prunes, %llu hb races, "
        "%llu backtrack points, %llu commute skips): %s [coverage: %s]\n",
        static_cast<unsigned long long>(st.nodes),
        static_cast<unsigned long long>(st.runs),
        static_cast<unsigned long long>(st.steps),
        static_cast<unsigned long long>(st.sleep_skips),
        static_cast<unsigned long long>(st.fp_prunes),
        static_cast<unsigned long long>(st.hb_races),
        static_cast<unsigned long long>(st.backtrack_points),
        static_cast<unsigned long long>(st.commute_skips),
        st.exhausted          ? "tree exhausted"
        : rep.cex.has_value() ? "stopped at violation"
        : deadline_hit        ? "deadline reached"
                              : "budget reached",
        cov.c_str());
    if (st.injected_crashes + st.injected_drops + st.injected_dups != 0) {
      std::printf(
          "injected faults: %llu crashes, %llu drops, %llu duplicates\n",
          static_cast<unsigned long long>(st.injected_crashes),
          static_cast<unsigned long long>(st.injected_drops),
          static_cast<unsigned long long>(st.injected_dups));
    }
    if (!rep.conservative_payloads.empty()) {
      std::printf("conservative payloads (no commutativity audit):");
      for (const std::string& id : rep.conservative_payloads) {
        std::printf(" %s", id.c_str());
      }
      std::printf("\n");
    }
  }
  if (rep.cex.has_value()) return report_cex(a, build, *rep.cex, "exhaustive");
  if (!a.save_state_path.empty() && !save_failed) {
    std::printf("state saved: %s (continue with --resume=%s)\n",
                a.save_state_path.c_str(), a.save_state_path.c_str());
  }
  std::printf("no violation found%s\n",
              !budget_left   ? ""
              : deadline_hit ? " yet (deadline reached, partial results)"
                             : " yet (budget exhausted, frontier saved)");
  if (save_failed) return kExitUsage;
  return budget_left ? kExitBudget : kExitClean;
}

int run_campaign_mode(const Args& a) {
  const explore::ScenarioBuilder build =
      explore::ScenarioFactory(a.scenario).builder();
  explore::CampaignOptions co;
  co.threads = a.threads;
  co.runs = a.runs;
  co.seed = a.scenario.seed;
  co.shrink = a.shrink;
  // Frontier DFS only makes sense for problems whose runs halt; on
  // service scenarios (never-done modules, e.g. omega-impl) a DFS never
  // reaches a terminal state and would just burn its whole budget.
  co.frontier_workers =
      explore::ScenarioFactory::supports_mode(a.scenario.problem, "exhaustive")
          ? a.frontier
          : 0;
  co.frontier_states = a.max_states;
  const explore::CampaignReport rep = explore::run_campaign(build, co);
  if (a.json && !rep.cex.has_value()) {
    std::printf(
        "{\"verdict\":\"clean\",\"mode\":\"campaign\",\"runs\":%llu,"
        "\"steps\":%llu,\"frontier_states\":%llu,"
        "\"liveness_suspects\":%llu}\n",
        static_cast<unsigned long long>(rep.runs),
        static_cast<unsigned long long>(rep.steps),
        static_cast<unsigned long long>(rep.nodes),
        static_cast<unsigned long long>(rep.liveness_suspects));
    return kExitClean;
  }
  std::printf(
      "campaign: %llu random runs, %llu frontier states, %llu steps, "
      "%llu liveness suspects\n",
      static_cast<unsigned long long>(rep.runs),
      static_cast<unsigned long long>(rep.nodes),
      static_cast<unsigned long long>(rep.steps),
      static_cast<unsigned long long>(rep.liveness_suspects));
  if (rep.cex.has_value()) {
    // The campaign already shrank it (when enabled).
    Args no_reshrink = a;
    no_reshrink.shrink = false;
    return report_cex(no_reshrink, build, *rep.cex, "campaign");
  }
  std::printf("no violation found\n");
  return kExitClean;
}

int run_replay_mode(const Args& a) {
  std::string error;
  const auto rf = explore::load_replay(a.replay_path, &error);
  if (!rf.has_value()) {
    std::fprintf(stderr, "bad replay file: %s\n", error.c_str());
    return kExitUsage;
  }
  const explore::ScenarioBuilder build =
      explore::ScenarioFactory(rf->scenario).builder();
  const explore::ReplayOutcome out =
      explore::run_replay(build, rf->decisions);
  if (out.violation.has_value()) {
    if (a.json) {
      std::printf(
          "{\"verdict\":\"violation\",\"property\":\"%s\",\"message\":\"%s\","
          "\"mode\":\"replay\",\"steps\":%llu}\n",
          out.violation->property.c_str(), out.violation->message.c_str(),
          static_cast<unsigned long long>(out.steps));
    } else {
      std::printf("VIOLATION of %s (replay, %llu steps)\n",
                  out.violation->property.c_str(),
                  static_cast<unsigned long long>(out.steps));
      std::printf("  %s\n", out.violation->message.c_str());
    }
    return kExitViolation;
  }
  std::printf("replay clean: %llu steps, all done: %s\n",
              static_cast<unsigned long long>(out.steps),
              out.all_done ? "yes" : "no");
  return kExitClean;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) {
    usage();
    return kExitUsage;
  }
  if (a.mode != Args::Mode::kReplay) {
    const std::string why = explore::ScenarioFactory::validate(a.scenario);
    if (!why.empty()) {
      std::fprintf(stderr, "invalid scenario: %s\n", why.c_str());
      return kExitUsage;
    }
  }
  if (a.mode != Args::Mode::kExhaustive &&
      (!a.save_state_path.empty() || !a.resume_path.empty() ||
       a.budget_states != 0 || a.deadline_ms != 0)) {
    std::fprintf(stderr,
                 "--save-state/--resume/--budget-states/--deadline-ms "
                 "require --exhaustive\n");
    return kExitUsage;
  }
  // Every registered problem/mode combination must be declared supported;
  // refusing here (exit 2) beats silently running a different mode.
  const char* mode_name = a.mode == Args::Mode::kExhaustive ? "exhaustive"
                          : a.mode == Args::Mode::kCampaign ? "campaign"
                                                            : "replay";
  if (a.mode != Args::Mode::kReplay &&
      !explore::ScenarioFactory::supports_mode(a.scenario.problem,
                                               mode_name)) {
    std::fprintf(stderr, "problem '%s' does not support --%s\n",
                 a.scenario.problem.c_str(), mode_name);
    return kExitUnsupported;
  }
  switch (a.mode) {
    case Args::Mode::kExhaustive:
      return run_exhaustive(a);
    case Args::Mode::kCampaign:
      return run_campaign_mode(a);
    case Args::Mode::kReplay:
      return run_replay_mode(a);
  }
  return kExitUsage;
}
