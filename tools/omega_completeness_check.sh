#!/bin/sh
# FD strong-completeness liveness lane for the *implemented*
# heartbeat/lease Omega (src/fd/heartbeat_omega.h), driven by ctest —
# the ~3-minute run ROADMAP used to list as manual-only, promoted to a
# label-gated lane (ctest -L completeness; kept out of the default and
# sanitizer lane sets by its label and a preset guard in
# tools/CMakeLists.txt).
#
# The scenario: omega-impl at n=3, depth 10, fair-cycle search for the
# fd-completeness clause over the full ~4.8M-node state graph. A "no
# fair cycle" verdict is the completeness statement: no fair schedule
# keeps a crashed process trusted forever.
#
# The run is deliberately split into two --save-state/--resume
# installments under the --deadline-ms watchdog, so the lane also
# proves the snapshot path (v5 graph lines included) carries a
# multi-million-node liveness search across invocations: installment 1
# stops at a wave barrier on a states budget (exit 4, partial report),
# installment 2 resumes and must exhaust with the completeness verdict.
#
# Usage: omega_completeness_check.sh /path/to/wfd_check
set -u

CHECK=${1:?usage: omega_completeness_check.sh /path/to/wfd_check}
DIR=$(mktemp -d) || exit 1
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

SCENARIO="--problem=omega-impl --n=3 --exhaustive
          --liveness=fd-completeness --reduction=none --depth=10
          --max-states=0 --threads=4 --deadline-ms=600000"

# Installment 1: pause at a wave barrier on a states budget.
$CHECK $SCENARIO --budget-states=400000 \
  --save-state="$DIR/omega.wfds" >"$DIR/part1.out" 2>&1
[ $? -eq 4 ] || fail "first installment did not exit 4: \
$(cat "$DIR/part1.out")"
grep -q "budget" "$DIR/part1.out" ||
  fail "first installment did not report a budget stop: \
$(cat "$DIR/part1.out")"
[ -f "$DIR/omega.wfds" ] || fail "no snapshot saved"

# Installment 2: resume to exhaustion and the completeness verdict.
$CHECK $SCENARIO --resume="$DIR/omega.wfds" >"$DIR/part2.out" 2>&1
[ $? -eq 0 ] || fail "resumed installment did not exit 0: \
$(cat "$DIR/part2.out")"
grep -q "tree exhausted" "$DIR/part2.out" ||
  fail "resumed installment did not exhaust: $(cat "$DIR/part2.out")"
grep -q "no fair cycle" "$DIR/part2.out" ||
  fail "no completeness verdict: $(cat "$DIR/part2.out")"

echo "fd completeness OK"
