#!/bin/sh
# Kill-the-leader soak lane for the runtime host (driven by ctest, see
# tools/CMakeLists.txt). Each iteration boots the replicated KV service
# fresh (a different seed every time), writes through it, kills the
# emitted leader, and requires the surviving replicas to (a) keep
# accepting writes and (b) still return the pre-kill value — wfd_serve's
# demo path exits 2 on either a wedge or a divergent read. Iterations
# alternate between the in-process channel transport and real
# loopback-TCP sockets.
#
# Failure modes caught here and not by the unit lane: rare thread
# interleavings around leader death (the service is rebuilt from scratch
# every iteration), and outright hangs — each iteration runs under a
# watchdog, and a timeout is a failure, not a skip.
#
# Usage: runtime_soak.sh /path/to/wfd_serve [iterations]
set -u

serve="${1:?usage: runtime_soak.sh /path/to/wfd_serve [iterations]}"
iters="${2:-6}"
# Generous per-iteration watchdog: failover itself is ~[omega_timeout +
# lease] ms; the rest is headroom for sanitizer builds on loaded CI.
watchdog=60

fail() {
  echo "runtime soak FAILED: $1" >&2
  exit 1
}

i=1
while [ "$i" -le "$iters" ]; do
  if [ $((i % 2)) -eq 0 ]; then
    transport="--tcp"
  else
    transport=""
  fi
  echo "== soak iteration $i/$iters (seed=$i ${transport:-channel})"
  timeout "$watchdog" "$serve" --n=3 --seed="$i" $transport
  status=$?
  [ "$status" -eq 124 ] && fail "iteration $i hung (watchdog ${watchdog}s)"
  [ "$status" -ne 0 ] && fail "iteration $i exited $status (wedge/divergence)"
  i=$((i + 1))
done

echo "runtime soak OK: $iters leader kills survived"
exit 0
