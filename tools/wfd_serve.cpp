// wfd_serve — the protocol stack as a service.
//
// Boots the replicated KV (src/runtime/kv.h): n replicas, each a
// thread-per-process runtime host running the *unmodified* module stack
// (ReplicatedObjectModule / AtomicBroadcast / URB / per-round
// (Omega, Sigma) consensus) with the implementable detectors
// (heartbeat/lease Omega + phi-accrual quorum view) merged into the
// host's detector sample. Examples:
//
//   wfd_serve                         # demo: puts/gets, kill the leader,
//                                     # show the service surviving it
//   wfd_serve --n=5 --tcp             # same over loopback-TCP sockets
//   wfd_serve --seconds=10            # closed-loop load, progress line/s
//   wfd_serve --bench --out=BENCH_runtime.json
//                                     # load matrix -> machine-readable
//                                     # JSON (ops/s, p50/p99, failover)
//
// Exit status: 0 on success, 1 on usage error, 2 when the service
// wedged (an operation exhausted every attempt).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/kv.h"

using namespace wfd;

namespace {

using Clock = std::chrono::steady_clock;

struct Args {
  int n = 3;
  bool tcp = false;
  bool bench = false;
  int seconds = 0;        ///< >0: timed load run instead of the demo.
  int clients = 3;
  double secs_per_row = 1.5;
  std::uint64_t seed = 1;
  std::string out = "BENCH_runtime.json";
};

void usage() {
  std::fprintf(
      stderr,
      "usage: wfd_serve [--n=N] [--tcp] [--seed=S]\n"
      "                 [--seconds=S]            timed closed-loop load\n"
      "                 [--bench] [--out=FILE]   load matrix -> JSON\n"
      "                 [--clients=C] [--secs-per-row=S]\n");
}

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + name + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--tcp") {
      a.tcp = true;
    } else if (arg == "--bench") {
      a.bench = true;
    } else if (auto v = val("n")) {
      a.n = std::atoi(v->c_str());
    } else if (auto v2 = val("seconds")) {
      a.seconds = std::atoi(v2->c_str());
    } else if (auto v3 = val("clients")) {
      a.clients = std::atoi(v3->c_str());
    } else if (auto v4 = val("secs-per-row")) {
      a.secs_per_row = std::atof(v4->c_str());
    } else if (auto v5 = val("seed")) {
      a.seed = std::strtoull(v5->c_str(), nullptr, 10);
    } else if (auto v6 = val("out")) {
      a.out = *v6;
    } else {
      usage();
      return false;
    }
  }
  if (a.n < 1 || a.clients < 1 || a.secs_per_row <= 0) {
    usage();
    return false;
  }
  return true;
}

runtime::KvService::Options service_options(const Args& a, int n) {
  runtime::KvService::Options so;
  so.n = n;
  so.seed = a.seed;
  so.tcp = a.tcp;
  return so;
}

/// One client thread's share of a closed-loop load run: alternating
/// put/get on per-client keys until the deadline, recording per-op
/// latency in microseconds.
struct LoadResult {
  std::vector<std::uint64_t> latencies_us;
  std::uint64_t failovers = 0;
  bool wedged = false;
};

LoadResult run_client(runtime::KvService& service, int client_id,
                      Clock::time_point deadline,
                      runtime::KvClient::Options copt) {
  runtime::KvClient client(service,
                           static_cast<ProcessId>(client_id % service.n()),
                           copt);
  LoadResult res;
  std::uint32_t i = 0;
  while (Clock::now() < deadline) {
    const auto key = static_cast<std::uint32_t>(client_id * 100 + (i & 3));
    const auto value = static_cast<std::uint32_t>(client_id * 100000 + i);
    const auto t0 = Clock::now();
    const std::optional<std::int64_t> r =
        (i & 1) ? client.get(key) : client.put(key, value);
    if (!r.has_value()) {
      res.wedged = true;
      break;
    }
    res.latencies_us.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              t0)
            .count()));
    ++i;
  }
  res.failovers = client.failovers();
  return res;
}

struct RowStats {
  std::uint64_t ops = 0;
  double ops_per_sec = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t failovers = 0;
  bool wedged = false;
};

/// Drives `clients` closed-loop threads against a running service for
/// `secs` and merges their latency streams.
RowStats run_load(runtime::KvService& service, int clients, double secs,
                  runtime::KvClient::Options copt = {}) {
  const auto deadline =
      Clock::now() + std::chrono::microseconds(
                         static_cast<std::int64_t>(secs * 1e6));
  std::vector<LoadResult> results(static_cast<std::size_t>(clients));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  const auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&service, &results, c, deadline, copt] {
      results[static_cast<std::size_t>(c)] =
          run_client(service, c, deadline, copt);
    });
  }
  for (auto& t : pool) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  RowStats row;
  std::vector<std::uint64_t> all;
  for (const LoadResult& r : results) {
    all.insert(all.end(), r.latencies_us.begin(), r.latencies_us.end());
    row.failovers += r.failovers;
    row.wedged = row.wedged || r.wedged;
  }
  row.ops = all.size();
  row.ops_per_sec = elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0;
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    row.p50_us = all[all.size() / 2];
    row.p99_us = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return row;
}

/// Time from killing the current leader to the next successful write at
/// a surviving replica, in milliseconds. Negative on wedge.
double measure_failover(const Args& a) {
  runtime::KvService service(service_options(a, 3));
  service.start();
  runtime::KvClient warm(service, 0);
  if (!warm.put(1, 11).has_value()) {
    service.stop();
    return -1;
  }
  const ProcessId leader = service.leader_view(1) == kNoProcess
                               ? 0
                               : service.leader_view(1);
  const auto survivor =
      static_cast<ProcessId>((leader + 1) % service.n());
  runtime::KvClient client(service, survivor);
  const auto t0 = Clock::now();
  service.kill(leader);
  const std::optional<std::int64_t> r = client.put(2, 22);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  service.stop();
  return r.has_value() ? ms : -1;
}

int run_bench(const Args& a) {
#ifdef NDEBUG
  const char* build = "release";
#else
  const char* build = "debug";
#endif
  std::FILE* out = std::fopen(a.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "wfd_serve: cannot open %s\n", a.out.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"context\": {\n"
               "    \"build\": \"%s\",\n"
               "    \"num_cpus\": %u,\n"
               "    \"clients\": %d,\n"
               "    \"secs_per_row\": %.2f,\n"
               "    \"detector_timing_ms\": {\"heartbeat_period\": %llu, "
               "\"omega_timeout\": %llu, \"omega_lease\": %llu}\n  },\n"
               "  \"rows\": [\n",
               build, std::thread::hardware_concurrency(), a.clients,
               a.secs_per_row,
               static_cast<unsigned long long>(
                   runtime::KvDetectorTiming{}.heartbeat_period),
               static_cast<unsigned long long>(
                   runtime::KvDetectorTiming{}.omega_timeout),
               static_cast<unsigned long long>(
                   runtime::KvDetectorTiming{}.omega_lease));

  bool wedged = false;
  bool first_row = true;
  const auto emit = [&](const std::string& name, int n,
                        const char* transport, double drop_prob,
                        std::uint64_t delay_ms, const RowStats& row) {
    std::fprintf(
        out,
        "%s    {\"name\": \"%s\", \"n\": %d, \"transport\": \"%s\", "
        "\"drop_prob\": %.3f, \"delay_ms\": %llu, \"ops\": %llu, "
        "\"ops_per_sec\": %.1f, \"p50_us\": %llu, \"p99_us\": %llu, "
        "\"failovers\": %llu}",
        first_row ? "" : ",\n", name.c_str(), n, transport, drop_prob,
        static_cast<unsigned long long>(delay_ms),
        static_cast<unsigned long long>(row.ops), row.ops_per_sec,
        static_cast<unsigned long long>(row.p50_us),
        static_cast<unsigned long long>(row.p99_us),
        static_cast<unsigned long long>(row.failovers));
    first_row = false;
    wedged = wedged || row.wedged;
    std::printf("%-16s n=%d %-7s %8.1f ops/s  p50 %6llu us  p99 %6llu us\n",
                name.c_str(), n, transport, row.ops_per_sec,
                static_cast<unsigned long long>(row.p50_us),
                static_cast<unsigned long long>(row.p99_us));
  };

  // Throughput/latency vs n over in-process channels.
  for (const int n : {3, 5}) {
    runtime::KvService service(service_options(a, n));
    service.start();
    const RowStats row = run_load(service, a.clients, a.secs_per_row);
    service.stop();
    emit("kv_n" + std::to_string(n), n, "channel", 0, 0, row);
  }
  // Same stack over real loopback-TCP sockets.
  {
    Args ta = a;
    ta.tcp = true;
    runtime::KvService service(service_options(ta, 3));
    service.start();
    const RowStats row = run_load(service, a.clients, a.secs_per_row);
    service.stop();
    emit("kv_n3_tcp", 3, "tcp", 0, 0, row);
  }
  // Throughput under injected loss and delay on every link. Loss is
  // injected *with retransmission* (a dropped copy arrives 20 ms late
  // instead of never): the protocol stack assumes quasi-reliable
  // channels — under final loss a dropped round-Decide is never
  // re-sent by the passive decided peers and the service stalls by
  // design — so this row models what the stack actually runs on in
  // production, a reliable transport over a lossy network. Ops still
  // stall across retransmit storms, so lossy clients get a wider
  // per-op retry budget before "wedged" is declared.
  {
    runtime::KvService::Options so = service_options(a, 3);
    so.faults.drop_prob = 0.05;
    so.faults.delay = 1;
    so.faults.retransmit = 20;
    runtime::KvService service(so);
    service.start();
    runtime::KvClient::Options copt;
    copt.attempt_timeout = 3000;
    copt.max_attempts = 10;
    const RowStats row =
        run_load(service, a.clients, a.secs_per_row, copt);
    service.stop();
    emit("kv_n3_lossy", 3, "channel", so.faults.drop_prob, so.faults.delay,
         row);
  }
  // Leader-kill failover: kill the emitted leader, time the next
  // successful write at a survivor (detector timeout + lease takeover +
  // one consensus round).
  const double failover_ms = measure_failover(a);
  std::fprintf(out,
               ",\n    {\"name\": \"leader_kill_failover\", \"n\": 3, "
               "\"transport\": \"channel\", \"failover_ms\": %.1f}\n  ]\n}\n",
               failover_ms);
  std::fclose(out);
  std::printf("leader_kill_failover: %.1f ms\n", failover_ms);
  std::printf("wrote %s\n", a.out.c_str());
  if (failover_ms < 0 || wedged) {
    std::fprintf(stderr, "wfd_serve: service wedged during bench\n");
    return 2;
  }
  return 0;
}

/// Timed closed-loop load with a progress line per second.
int run_timed(const Args& a) {
  runtime::KvService service(service_options(a, a.n));
  service.start();
  std::printf("serving replicated KV: n=%d transport=%s\n", a.n,
              a.tcp ? "tcp" : "channel");
  RowStats total;
  for (int s = 0; s < a.seconds; ++s) {
    const RowStats row = run_load(service, a.clients, 1.0);
    std::printf("[%2d s] %8.1f ops/s  p50 %6llu us  p99 %6llu us  leader p%d\n",
                s + 1, row.ops_per_sec,
                static_cast<unsigned long long>(row.p50_us),
                static_cast<unsigned long long>(row.p99_us),
                service.leader_view(0));
    total.ops += row.ops;
    total.wedged = total.wedged || row.wedged;
    if (total.wedged) break;
  }
  service.stop();
  std::printf("%llu ops total\n",
              static_cast<unsigned long long>(total.ops));
  return total.wedged ? 2 : 0;
}

/// The default guided tour: a few operations, then a leader kill, then
/// proof the service still answers (and still remembers).
int run_demo(const Args& a) {
  runtime::KvService service(service_options(a, a.n));
  service.start();
  std::printf("replicated KV up: n=%d transport=%s (unmodified module "
              "stack, heartbeat Omega + phi-accrual quorums)\n",
              a.n, a.tcp ? "tcp" : "channel");
  runtime::KvClient client(service, 0);
  const auto step = [&](const char* what,
                        std::optional<std::int64_t> r) -> bool {
    if (!r.has_value()) {
      std::fprintf(stderr, "%s: WEDGED\n", what);
      return false;
    }
    std::printf("%-28s -> %lld\n", what, static_cast<long long>(*r));
    return true;
  };
  if (!step("put k=1 v=41", client.put(1, 41))) return 2;
  if (!step("put k=1 v=42", client.put(1, 42))) return 2;
  if (!step("get k=1", client.get(1))) return 2;
  const ProcessId leader =
      service.leader_view(0) == kNoProcess ? 0 : service.leader_view(0);
  std::printf("killing leader p%d...\n", leader);
  service.kill(leader);
  runtime::KvClient survivor(
      service, static_cast<ProcessId>((leader + 1) % a.n));
  if (!step("put k=2 v=7 (post-kill)", survivor.put(2, 7))) return 2;
  const std::optional<std::int64_t> back = survivor.get(1);
  if (!step("get k=1 (post-kill)", back)) return 2;
  if (*back != 42) {
    std::fprintf(stderr, "DIVERGENCE: k=1 read %lld, expected 42\n",
                 static_cast<long long>(*back));
    service.stop();
    return 2;
  }
  std::printf("service survived the leader kill (%llu failovers seen)\n",
              static_cast<unsigned long long>(survivor.failovers()));
  service.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) return 1;
  if (a.bench) return run_bench(a);
  if (a.seconds > 0) return run_timed(a);
  return run_demo(a);
}
